//! Metrics registry: named counters, gauges, and log₂-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap reference
//! clones, so hot paths (the write barrier, the memory access path) fetch a
//! handle once and bump it without any name lookup. The registry itself is
//! also a handle: clones observe the same metrics, which is how mid-run
//! queries work — the monitor publishes into the same registry the
//! experiment driver later snapshots.
//!
//! Naming convention: dotted lowercase paths, `subsystem.metric`, e.g.
//! `gc.pause_cycles`, `barrier.slow`, `chunks.free`, `llc.hit_rate`.

use crate::json::{JsonObject, ToJson};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Monotonic event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    fn reset(&self) {
        self.0.set(0);
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    fn reset(&self) {
        self.0.set(0.0);
    }
}

/// Number of log₂ buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, up to the full `u64` range.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistData {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl HistData {
    fn new() -> Self {
        HistData {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Log₂-bucketed distribution of `u64` samples.
///
/// Bucketing is exponent-based: sample `v` lands in bucket
/// `64 - v.leading_zeros()` (zeros in bucket 0), so the full 64-bit range is
/// covered by 65 fixed buckets with no configuration.
#[derive(Debug, Clone)]
pub struct Histogram(Rc<RefCell<HistData>>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Rc::new(RefCell::new(HistData::new())))
    }
}

/// Index of the log₂ bucket `v` falls into.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for buckets 0 and 1).
pub fn bucket_lo(i: usize) -> u64 {
    if i <= 1 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        let mut h = self.0.borrow_mut();
        h.count += 1;
        h.sum = h.sum.wrapping_add(v);
        h.min = h.min.min(v);
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    /// Immutable copy of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.borrow();
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| BucketCount {
                    lo: bucket_lo(i),
                    hi: bucket_hi(i),
                    count: c,
                })
                .collect(),
        }
    }

    fn reset(&self) {
        *self.0.borrow_mut() = HistData::new();
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: samples in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Inclusive upper bound of the bucket.
    pub hi: u64,
    /// Number of samples that landed in the bucket.
    pub count: u64,
}

impl ToJson for BucketCount {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("lo", &self.lo)
            .field("hi", &self.hi)
            .field("count", &self.count);
        obj.finish();
    }
}

/// Point-in-time copy of a [`Histogram`]; only non-empty buckets are kept.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty log₂ buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the log₂ bucket holding the target rank, tightened by the
    /// exact `min`/`max`. The estimate is exact at the extremes and
    /// accurate to within one bucket's width elsewhere, erring toward the
    /// bucket's upper edge (the conservative direction for pause-time
    /// quantiles). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample that answers the quantile.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            if seen + b.count >= target {
                // The bucket's true value range, tightened by the observed
                // extrema (exact when the bucket is first/last).
                let lo = b.lo.max(self.min).min(self.max);
                let hi = b.hi.min(self.max).max(lo);
                let into = (target - seen) as f64 / b.count as f64;
                return lo + ((hi - lo) as f64 * into).round() as u64;
            }
            seen += b.count;
        }
        self.max
    }

    /// Median (50th percentile) estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl ToJson for HistogramSnapshot {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("buckets", &self.buckets);
        obj.finish();
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Shared registry of named metrics; clones observe the same metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Returns the counter `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.borrow_mut();
        reg.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the gauge `name`, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.inner.borrow_mut();
        reg.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram `name`, creating it empty if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.inner.borrow_mut();
        reg.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Current value of counter `name` (0 if it does not exist).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .map_or(0, Counter::get)
    }

    /// Current value of gauge `name` (0.0 if it does not exist).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.inner.borrow().gauges.get(name).map_or(0.0, Gauge::get)
    }

    /// Snapshot of histogram `name`, if it exists.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .borrow()
            .histograms
            .get(name)
            .map(Histogram::snapshot)
    }

    /// Zeroes every metric while keeping all outstanding handles valid.
    ///
    /// Called at the start of a measured iteration so warm-up activity does
    /// not pollute reported distributions.
    pub fn reset(&self) {
        let reg = self.inner.borrow();
        for c in reg.counters.values() {
            c.reset();
        }
        for g in reg.gauges.values() {
            g.reset();
        }
        for h in reg.histograms.values() {
            h.reset();
        }
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.borrow();
        MetricsSnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`Metrics`] registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ToJson for MetricsSnapshot {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        {
            let mut counters = String::new();
            let mut inner = JsonObject::new(&mut counters);
            for (k, v) in &self.counters {
                inner.field(k, v);
            }
            inner.finish();
            obj.field("counters", &RawJson(counters));
        }
        {
            let mut gauges = String::new();
            let mut inner = JsonObject::new(&mut gauges);
            for (k, v) in &self.gauges {
                inner.field(k, v);
            }
            inner.finish();
            obj.field("gauges", &RawJson(gauges));
        }
        {
            let mut hists = String::new();
            let mut inner = JsonObject::new(&mut hists);
            for (k, v) in &self.histograms {
                inner.field(k, v);
            }
            inner.finish();
            obj.field("histograms", &RawJson(hists));
        }
        obj.finish();
    }
}

/// Pre-rendered JSON spliced verbatim into a parent document.
struct RawJson(String);

impl ToJson for RawJson {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.incr();
        b.add(4);
        assert_eq!(m.counter_value("x"), 5);
        assert_eq!(m.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = Metrics::new();
        m.gauge("rate").set(3.5);
        m.gauge("rate").set(1.25);
        assert_eq!(m.gauge_value("rate"), 1.25);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        assert_eq!((bucket_lo(0), bucket_hi(0)), (0, 0));
        assert_eq!((bucket_lo(1), bucket_hi(1)), (0, 1));
        assert_eq!((bucket_lo(2), bucket_hi(2)), (2, 3));
        for i in 2..64 {
            assert_eq!(bucket_lo(i + 1), bucket_hi(i) + 1, "gap after bucket {i}");
        }
        assert_eq!(bucket_hi(64), u64::MAX);
        // Every value falls inside its own bucket's bounds.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(
                bucket_lo(i) <= v && v <= bucket_hi(i),
                "{v} outside bucket {i}"
            );
        }
    }

    #[test]
    fn histogram_tracks_count_sum_extrema() {
        let m = Metrics::new();
        let h = m.histogram("pause");
        for v in [0u64, 3, 3, 900] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 906);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 900);
        assert!((snap.mean() - 226.5).abs() < 1e-9);
        // Buckets: one zero, two threes (bucket [2,3]), one 900 (bucket [512,1023]).
        assert_eq!(
            snap.buckets,
            vec![
                BucketCount {
                    lo: 0,
                    hi: 0,
                    count: 1
                },
                BucketCount {
                    lo: 2,
                    hi: 3,
                    count: 2
                },
                BucketCount {
                    lo: 512,
                    hi: 1023,
                    count: 1
                },
            ]
        );
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let m = Metrics::new();
        let snap = m.histogram("empty").snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let m = Metrics::new();
        let c = m.counter("c");
        let h = m.histogram("h");
        c.add(9);
        h.observe(5);
        m.reset();
        assert_eq!(m.counter_value("c"), 0);
        assert_eq!(h.count(), 0);
        c.incr();
        h.observe(2);
        assert_eq!(m.counter_value("c"), 1);
        assert_eq!(m.histogram_snapshot("h").unwrap().count, 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = Metrics::new();
        m.counter("a.b").add(2);
        m.gauge("g").set(0.5);
        m.histogram("h").observe(1);
        let json = m.snapshot().to_json();
        assert_eq!(
            json,
            r#"{"counters":{"a.b":2},"gauges":{"g":0.5},"histograms":{"h":{"count":1,"sum":1,"min":1,"max":1,"mean":1,"p50":1,"p95":1,"p99":1,"buckets":[{"lo":0,"hi":1,"count":1}]}}}"#
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = Metrics::new();
        let h = m.histogram("q");
        // 100 samples 1..=100: p50 ≈ 50, p95 ≈ 95, p99 ≈ 99, within one
        // log₂ bucket's interpolation error.
        for v in 1..=100u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 100);
        let p50 = snap.p50();
        assert!((33..=67).contains(&p50), "p50 estimate {p50} off");
        let p95 = snap.p95();
        assert!((85..=100).contains(&p95), "p95 estimate {p95} off");
        assert!(snap.p99() >= p95, "quantiles must be monotone");
    }

    #[test]
    fn quantiles_clamp_to_observed_extrema() {
        let m = Metrics::new();
        let h = m.histogram("q");
        for v in [4u64, 70, 3000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // The top quantiles hit the exact max (not the bucket's upper
        // bound, 4095); the median stays within its bucket.
        assert_eq!(snap.quantile(1.0), 3000);
        assert_eq!(snap.p99(), 3000);
        let p50 = snap.p50();
        assert!((64..=127).contains(&p50), "p50 estimate {p50} off");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Metrics::new().histogram("none").snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
    }
}
