//! Atomic artifact commits: every exported file goes through one
//! temp-file + rename helper, so no reader (or crash) ever observes a
//! torn artifact.
//!
//! The platform's robustness claim — a sweep killed at any instant can be
//! resumed to byte-identical artifacts — needs two filesystem properties:
//!
//! 1. **No torn files.** A final artifact path either holds the complete
//!    previous version or the complete new version, never a prefix. POSIX
//!    `rename(2)` within one directory is atomic, so [`write_atomic`]
//!    writes to a `.tmp` sibling, fsyncs it, and renames it into place.
//! 2. **Durability ordering.** The sweep journal (`journal.jsonl`, see
//!    [`crate::journal`]) must reach stable storage before the run it
//!    records is considered committed; [`write_atomic`] fsyncs both the
//!    temp file and (best-effort) its directory so a rename survives a
//!    power cut.
//!
//! The content hash used to tie journal records to their per-run artifact
//! files is FNV-1a — tiny, dependency-free, and stable across platforms.
//! It guards against *accidental* corruption (torn writes, stale files
//! from an older sweep), not adversaries.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// The 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a. Deterministic across platforms and
/// builds; used to fingerprint sweep plans and per-run artifact contents.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders a hash as the fixed-width lower-case hex the journal stores.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Best-effort fsync of the directory containing `path`, so a just-created
/// or just-renamed entry survives a crash. Directory fsync is not
/// supported everywhere; failures are ignored by design.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a `.tmp`
/// sibling first, are fsync'd, and are renamed over the final path. A
/// reader (or a crash at any instant) sees either the old complete file or
/// the new complete file — never a torn mixture.
///
/// All export artifacts of the workspace (`runs.json`, per-run JSON,
/// `samples.csv`, traces, timelines, heatmaps, `BENCH_results.json`) go
/// through this helper; nothing writes a final artifact path directly.
///
/// # Errors
///
/// Propagates I/O errors from the temp-file write or the rename.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {
            sync_parent_dir(path);
            Ok(())
        }
        Err(e) => {
            // Leave no droppings behind a failed commit.
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// [`write_atomic`] for string content.
///
/// # Errors
///
/// Propagates I/O errors from the temp-file write or the rename.
pub fn write_atomic_str(path: &Path, contents: &str) -> io::Result<()> {
    write_atomic(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hemu-obs-tests").join("artifact");
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name)
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(hash_hex(fnv1a64(b"")), "cbf29ce484222325");
    }

    #[test]
    fn atomic_write_replaces_content_and_cleans_up() {
        let path = tmp("replace.json");
        write_atomic_str(&path, "first\n").expect("first write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "first\n");
        write_atomic_str(&path, "second\n").expect("second write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "second\n");
        // No temp droppings left next to the artifact.
        let dir = path.parent().expect("parent");
        let leftovers: Vec<_> = fs::read_dir(dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
    }

    #[test]
    fn missing_parent_directory_is_an_error() {
        let path = tmp("no-such-dir").join("deep").join("x.json");
        assert!(write_atomic_str(&path, "x").is_err());
    }
}
