//! Write-ahead run journal for crash-safe sweeps.
//!
//! A sweep writing to a JSON export directory also maintains
//! `journal.jsonl` there: one header line identifying the sweep plan,
//! then one record per committed run. Each record is appended and
//! fsync'd *after* the run's artifacts are durably committed (atomic
//! rename, see [`crate::artifact`]), so a journal record is a promise
//! that the run's per-run JSON exists and matches the recorded content
//! hash. On resume, the harness replays journaled `ok` runs into its
//! memo table and re-executes everything else; because runs are
//! deterministic, any record that cannot be safely replayed is simply
//! dropped and the run is re-executed — byte-identity holds either way.
//!
//! Torn tails are expected: a crash can land mid-append. The reader
//! stops at the first line that does not parse as a complete record
//! (standard WAL truncation semantics) and reports how many lines it
//! dropped. A journal whose header does not match the current sweep
//! plan is a different experiment; replaying it would silently mix
//! configurations, so the reader surfaces the mismatch as a typed
//! condition for the caller to refuse.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::json::JsonObject;
use crate::value::JsonValue;

/// Journal format identifier; bump on incompatible record changes.
pub const JOURNAL_SCHEMA: &str = "hemu-sweep-journal/1";

/// File name of the journal inside a JSON export directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One committed run, as recorded in (or read back from) the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The harness memo key (`spec|manager|instances|profile`).
    pub key: String,
    /// Final status string (`ok`, `failed`, `timed-out`).
    pub status: String,
    /// Attempts consumed, including the successful one.
    pub attempts: u32,
    /// Effective fault seed of the final attempt, when a fault plan
    /// applied to this run; `None` otherwise.
    pub seed: Option<u64>,
    /// Rendered error for non-`ok` runs.
    pub error: Option<String>,
    /// FNV-1a hash (hex16, see [`crate::artifact::hash_hex`]) of the
    /// per-run JSON artifact for `ok` runs; `None` otherwise.
    pub hash: Option<String>,
}

impl JournalRecord {
    fn to_json_line(&self) -> String {
        let mut out = String::new();
        let mut o = JsonObject::new(&mut out);
        o.field("key", self.key.as_str())
            .field("status", self.status.as_str())
            .field("attempts", &u64::from(self.attempts))
            .field("seed", &self.seed)
            .field("error", &self.error)
            .field("hash", &self.hash);
        o.finish();
        out
    }

    fn from_value(v: &JsonValue) -> Option<JournalRecord> {
        let key = v.get("key")?.as_str()?.to_string();
        let status = v.get("status")?.as_str()?.to_string();
        let attempts = u32::try_from(v.get("attempts")?.as_u64()?).ok()?;
        let seed = match v.get("seed")? {
            JsonValue::Null => None,
            n => Some(n.as_u64()?),
        };
        let error = match v.get("error")? {
            JsonValue::Null => None,
            s => Some(s.as_str()?.to_string()),
        };
        let hash = match v.get("hash")? {
            JsonValue::Null => None,
            s => Some(s.as_str()?.to_string()),
        };
        Some(JournalRecord {
            key,
            status,
            attempts,
            seed,
            error,
            hash,
        })
    }
}

/// Append-only journal writer. Every append is fsync'd before returning,
/// so a record that `append` acknowledged survives an abrupt kill.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating any previous journal) `journal.jsonl` in
    /// `dir` and writes the header line for `plan_hash`.
    ///
    /// Truncation is deliberate: resume re-journals replayed runs in
    /// demand order, so a resumed sweep's journal ends byte-identical
    /// to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating or syncing the file.
    pub fn create(dir: &Path, plan_hash: &str) -> io::Result<JournalWriter> {
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut line = String::new();
        let mut o = JsonObject::new(&mut line);
        o.field("journal", JOURNAL_SCHEMA)
            .field("plan_hash", plan_hash);
        o.finish();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(JournalWriter { file })
    }

    /// Appends one record and fsyncs it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append or the sync.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let mut line = record.to_json_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// Result of reading a journal back.
#[derive(Debug)]
pub struct JournalContents {
    /// Plan hash recorded in the header.
    pub plan_hash: String,
    /// Complete, well-formed records, in commit order.
    pub records: Vec<JournalRecord>,
    /// Trailing lines dropped as torn/garbage (crash mid-append).
    pub dropped_lines: usize,
}

/// Why a journal could not be loaded.
#[derive(Debug)]
pub enum JournalReadError {
    /// The journal file could not be read at all.
    Io(io::Error),
    /// The first line is missing or is not a valid journal header.
    BadHeader(String),
    /// The header identifies a different sweep plan.
    PlanMismatch {
        /// Hash the current sweep expects.
        expected: String,
        /// Hash found in the journal header.
        found: String,
    },
}

impl std::fmt::Display for JournalReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalReadError::Io(e) => write!(f, "journal read failed: {e}"),
            JournalReadError::BadHeader(why) => write!(f, "bad journal header: {why}"),
            JournalReadError::PlanMismatch { expected, found } => write!(
                f,
                "journal plan hash {found} does not match current sweep plan {expected}"
            ),
        }
    }
}

impl std::error::Error for JournalReadError {}

/// Path of the journal inside a JSON export directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Reads the journal in `dir`, validating the header against
/// `expected_plan_hash`. Torn or garbage trailing lines are dropped
/// (counted in [`JournalContents::dropped_lines`]); a record line that
/// fails to parse ends the replayable prefix, because anything after it
/// has unknown provenance.
///
/// # Errors
///
/// - [`JournalReadError::Io`] when the file cannot be read;
/// - [`JournalReadError::BadHeader`] when the first line is not a
///   `hemu-sweep-journal/1` header;
/// - [`JournalReadError::PlanMismatch`] when the journal belongs to a
///   different sweep plan.
pub fn read_journal(
    dir: &Path,
    expected_plan_hash: &str,
) -> Result<JournalContents, JournalReadError> {
    let path = journal_path(dir);
    let mut text = String::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(JournalReadError::Io)?;
    let mut lines = text.split_inclusive('\n');
    let header_line = lines
        .next()
        .ok_or_else(|| JournalReadError::BadHeader("empty journal".to_string()))?;
    if !header_line.ends_with('\n') {
        return Err(JournalReadError::BadHeader("torn header line".to_string()));
    }
    let header = JsonValue::parse(header_line.trim_end())
        .map_err(|e| JournalReadError::BadHeader(e.to_string()))?;
    match header.get("journal").and_then(JsonValue::as_str) {
        Some(JOURNAL_SCHEMA) => {}
        Some(other) => {
            return Err(JournalReadError::BadHeader(format!(
                "unsupported journal schema {other:?}"
            )))
        }
        None => {
            return Err(JournalReadError::BadHeader(
                "missing schema field".to_string(),
            ))
        }
    }
    let plan_hash = header
        .get("plan_hash")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| JournalReadError::BadHeader("missing plan_hash".to_string()))?
        .to_string();
    if plan_hash != expected_plan_hash {
        return Err(JournalReadError::PlanMismatch {
            expected: expected_plan_hash.to_string(),
            found: plan_hash,
        });
    }
    let mut records = Vec::new();
    let mut dropped_lines = 0;
    let mut torn = false;
    for line in lines {
        if torn {
            dropped_lines += 1;
            continue;
        }
        let complete = line.ends_with('\n');
        let parsed = if complete {
            JsonValue::parse(line.trim_end())
                .ok()
                .as_ref()
                .and_then(JournalRecord::from_value)
        } else {
            None
        };
        match parsed {
            Some(rec) => records.push(rec),
            None => {
                // First torn/garbage line: the durable prefix ends here.
                torn = true;
                if !line.trim().is_empty() {
                    dropped_lines += 1;
                }
            }
        }
    }
    Ok(JournalContents {
        plan_hash,
        records,
        dropped_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("hemu-obs-tests")
            .join("journal")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn sample(key: &str, status: &str, hash: Option<&str>) -> JournalRecord {
        JournalRecord {
            key: key.to_string(),
            status: status.to_string(),
            attempts: 1,
            seed: if status == "ok" { None } else { Some(0xFA17) },
            error: if status == "ok" {
                None
            } else {
                Some("boom".to_string())
            },
            hash: hash.map(str::to_string),
        }
    }

    #[test]
    fn roundtrips_records() {
        let dir = tmp_dir("roundtrip");
        let mut w = JournalWriter::create(&dir, "deadbeefdeadbeef").expect("create");
        let a = sample("pr|KG-N|1|None", "ok", Some("0123456789abcdef"));
        let b = sample("cc|PCM-Only|1|None", "failed", None);
        w.append(&a).expect("append a");
        w.append(&b).expect("append b");
        let c = read_journal(&dir, "deadbeefdeadbeef").expect("read");
        assert_eq!(c.plan_hash, "deadbeefdeadbeef");
        assert_eq!(c.records, vec![a, b]);
        assert_eq!(c.dropped_lines, 0);
    }

    #[test]
    fn tolerates_torn_trailing_record() {
        let dir = tmp_dir("torn");
        let mut w = JournalWriter::create(&dir, "cafe").expect("create");
        let a = sample("pr|KG-N|1|None", "ok", Some("0123456789abcdef"));
        w.append(&a).expect("append");
        // Simulate a crash mid-append: half a record, no newline.
        let path = journal_path(&dir);
        let mut text = fs::read_to_string(&path).expect("read");
        text.push_str("{\"key\":\"cc|KG");
        fs::write(&path, text).expect("write torn");
        let c = read_journal(&dir, "cafe").expect("read");
        assert_eq!(c.records, vec![a]);
        assert_eq!(c.dropped_lines, 1);
    }

    #[test]
    fn drops_everything_after_first_bad_line() {
        let dir = tmp_dir("garbage");
        let mut w = JournalWriter::create(&dir, "cafe").expect("create");
        let a = sample("pr|KG-N|1|None", "ok", Some("0123456789abcdef"));
        w.append(&a).expect("append");
        let path = journal_path(&dir);
        let mut text = fs::read_to_string(&path).expect("read");
        text.push_str("not json\n");
        // A well-formed record *after* garbage must not be replayed.
        text.push_str(&sample("cc|KG-N|1|None", "ok", Some("ffffffffffffffff")).to_json_line());
        text.push('\n');
        fs::write(&path, text).expect("write");
        let c = read_journal(&dir, "cafe").expect("read");
        assert_eq!(c.records, vec![a]);
        assert_eq!(c.dropped_lines, 2);
    }

    #[test]
    fn refuses_plan_mismatch_and_bad_header() {
        let dir = tmp_dir("mismatch");
        let _ = JournalWriter::create(&dir, "aaaa").expect("create");
        match read_journal(&dir, "bbbb") {
            Err(JournalReadError::PlanMismatch { expected, found }) => {
                assert_eq!(expected, "bbbb");
                assert_eq!(found, "aaaa");
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        fs::write(journal_path(&dir), "{\"not\":\"a header\"}\n").expect("write");
        assert!(matches!(
            read_journal(&dir, "aaaa"),
            Err(JournalReadError::BadHeader(_))
        ));
        fs::remove_file(journal_path(&dir)).expect("rm");
        assert!(matches!(
            read_journal(&dir, "aaaa"),
            Err(JournalReadError::Io(_))
        ));
    }

    #[test]
    fn resumed_journal_matches_clean_journal() {
        // Re-creating and re-appending the same records yields identical bytes.
        let a = tmp_dir("clean");
        let b = tmp_dir("resumed");
        let recs = vec![
            sample("pr|KG-N|1|None", "ok", Some("0123456789abcdef")),
            sample("cc|PCM-Only|1|None", "timed-out", None),
        ];
        for dir in [&a, &b] {
            let mut w = JournalWriter::create(dir, "feed").expect("create");
            for r in &recs {
                w.append(r).expect("append");
            }
        }
        let ta = fs::read(journal_path(&a)).expect("read a");
        let tb = fs::read(journal_path(&b)).expect("read b");
        assert_eq!(ta, tb);
    }
}
