//! Chrome trace-event timeline export for [`SpanRecord`]s.
//!
//! Renders the spans of one or more runs as a Chrome trace-event JSON
//! document (`{"traceEvents":[...]}`) loadable in Perfetto or
//! `chrome://tracing`. Each run becomes one track (`tid`), named after the
//! run via a `thread_name` metadata event; spans become complete (`"X"`)
//! events whose `ts`/`dur` are *virtual* microseconds — cycles divided by
//! the emulated core frequency. Runs are laid out end-to-end in the order
//! they were added, under one synthetic `sweep` span on track 0, so a whole
//! sweep reads as a single timeline.
//!
//! Only virtual time appears in the document. Wall-clock durations are host
//! noise and would break the platform's byte-identical-at-any-`--jobs`
//! artifact contract, so they are deliberately excluded.

use crate::json::{push_json_f64, push_json_str};
use crate::span::SpanRecord;
use hemu_types::Cycles;

/// One run's spans plus the scale needed to place them on the timeline.
#[derive(Debug, Clone)]
struct TimelineRun {
    label: String,
    freq_hz: f64,
    elapsed: Cycles,
    spans: Vec<SpanRecord>,
}

/// Accumulates runs and renders them as one Chrome trace-event document.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    runs: Vec<TimelineRun>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Whether any run has been added.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs added.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Appends one run's spans. `elapsed` is the run's total virtual time
    /// (its extent on the timeline); `freq_hz` converts its cycle stamps to
    /// microseconds. Call order determines track order and layout — callers
    /// must add runs in a deterministic order.
    pub fn add_run(&mut self, label: &str, freq_hz: f64, elapsed: Cycles, spans: Vec<SpanRecord>) {
        self.runs.push(TimelineRun {
            label: label.to_string(),
            freq_hz: if freq_hz > 0.0 { freq_hz } else { 1.0 },
            elapsed,
            spans,
        });
    }

    /// Renders the trace-event JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push_event =
            |out: &mut String, name: &str, cat: &str, ts: f64, dur: f64, tid: usize| {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"name\":");
                push_json_str(out, name);
                out.push_str(",\"cat\":");
                push_json_str(out, cat);
                out.push_str(",\"ph\":\"X\",\"ts\":");
                push_json_f64(out, ts);
                out.push_str(",\"dur\":");
                push_json_f64(out, dur);
                out.push_str(&format!(",\"pid\":1,\"tid\":{tid}}}"));
            };

        let mut offset_us = 0.0f64;
        let mut total_us = 0.0f64;
        for (i, run) in self.runs.iter().enumerate() {
            let tid = i + 1;
            let scale = 1e6 / run.freq_hz;
            let run_us = run.elapsed.raw() as f64 * scale;
            push_event(&mut out, &run.label, "run", offset_us, run_us, tid);
            for span in &run.spans {
                let ts = offset_us + span.begin.raw() as f64 * scale;
                let dur = span.cycles() as f64 * scale;
                push_event(&mut out, span.name, span.cat, ts, dur, tid);
            }
            offset_us += run_us;
            total_us = offset_us;
        }
        if !self.runs.is_empty() {
            push_event(&mut out, "sweep", "sweep", 0.0, total_us, 0);
        }

        // Name the tracks after their runs (metadata events carry no time).
        let mut names = vec![("sweep".to_string(), 0usize)];
        names.extend(
            self.runs
                .iter()
                .enumerate()
                .map(|(i, r)| (r.label.clone(), i + 1)),
        );
        for (label, tid) in names {
            if !self.runs.is_empty() || tid > 0 {
                out.push(',');
                out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
                out.push_str(&format!("{tid}"));
                out.push_str(",\"args\":{\"name\":");
                push_json_str(&mut out, &label);
                out.push_str("}}");
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, begin: u64, end: u64, depth: u32) -> SpanRecord {
        SpanRecord {
            name,
            cat: "gc",
            begin: Cycles::new(begin),
            end: Cycles::new(end),
            depth,
            wall_nanos: 12345, // must never surface in the document
        }
    }

    #[test]
    fn empty_timeline_renders_a_valid_document() {
        let doc = Timeline::new().render();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn runs_lay_out_end_to_end_in_add_order() {
        let mut t = Timeline::new();
        // 1 MHz: 1 cycle = 1 µs, so stamps read directly.
        t.add_run("a", 1e6, Cycles::new(100), vec![span("minor", 10, 30, 0)]);
        t.add_run("b", 1e6, Cycles::new(50), vec![span("full", 0, 20, 0)]);
        let doc = t.render();
        // Run `a` occupies [0, 100); its span sits at ts=10.
        assert!(
            doc.contains(r#"{"name":"a","cat":"run","ph":"X","ts":0,"dur":100,"pid":1,"tid":1}"#)
        );
        assert!(doc
            .contains(r#"{"name":"minor","cat":"gc","ph":"X","ts":10,"dur":20,"pid":1,"tid":1}"#));
        // Run `b` starts where `a` ended.
        assert!(
            doc.contains(r#"{"name":"b","cat":"run","ph":"X","ts":100,"dur":50,"pid":1,"tid":2}"#)
        );
        assert!(doc
            .contains(r#"{"name":"full","cat":"gc","ph":"X","ts":100,"dur":20,"pid":1,"tid":2}"#));
        // The sweep span covers both on track 0.
        assert!(doc.contains(
            r#"{"name":"sweep","cat":"sweep","ph":"X","ts":0,"dur":150,"pid":1,"tid":0}"#
        ));
        // Tracks are named.
        assert!(
            doc.contains(r#"{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"a"}}"#)
        );
        // Wall time never leaks into the document.
        assert!(!doc.contains("12345"));
    }

    #[test]
    fn zero_frequency_is_tolerated() {
        let mut t = Timeline::new();
        t.add_run("x", 0.0, Cycles::new(10), Vec::new());
        assert!(t.render().contains("\"tid\":1"));
    }
}
