//! A minimal JSON reader for resuming sweeps.
//!
//! The platform's exporters hand-roll their JSON (see [`crate::json`]);
//! nothing in the workspace needs a general serializer. Crash-safe resume
//! is the first feature that must *read* JSON back: the run journal and
//! the per-run report artifacts. This module is the matching reader — a
//! small recursive-descent parser over the subset of JSON the exporters
//! emit.
//!
//! Numbers are kept as their raw source text ([`JsonValue::Number`]) so
//! `u64` counters round-trip exactly; callers pick `as_u64`/`as_f64` at
//! the use site. The parser accepts any valid JSON document the exporters
//! produce and rejects trailing garbage, which is exactly what journal
//! truncation detection needs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as the raw token text for lossless round-trips.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (exporters re-emit in their
    /// own fixed field order, so parse order never matters).
    Object(BTreeMap<String, JsonValue>),
}

/// Why a parse failed, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] describing the first malformed token.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` when not an object or key missing.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Borrows the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses the number token as `u64` (rejects signs/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Parses the number token as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // The exporters only emit \u escapes for
                            // control characters; surrogate pairs never
                            // appear (non-BMP chars pass through as UTF-8).
                            let ch = char::from_u32(u32::from(cp))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar worth of bytes.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        Ok(JsonValue::Number(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").expect("null"), JsonValue::Null);
        assert_eq!(
            JsonValue::parse(" true ").expect("true"),
            JsonValue::Bool(true)
        );
        assert_eq!(
            JsonValue::parse("-12.5e3").expect("num"),
            JsonValue::Number("-12.5e3".to_string())
        );
        let v = JsonValue::parse("18446744073709551615").expect("u64 max");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":{}}"#).expect("doc");
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x\ny"));
        let arr = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").expect("b").is_null());
        assert!(v
            .get("d")
            .and_then(JsonValue::as_object)
            .expect("d")
            .is_empty());
    }

    #[test]
    fn unescapes_control_characters() {
        let v = JsonValue::parse("\"tab\\t cr\\r quote\\\" u\\u0001\"").expect("str");
        assert_eq!(v.as_str(), Some("tab\t cr\r quote\" u\u{1}"));
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        assert!(JsonValue::parse(r#"{"a":1"#).is_err());
        assert!(JsonValue::parse(r#"{"a":1} extra"#).is_err());
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse(r#""unterminated"#).is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn roundtrips_exporter_output() {
        // A shape representative of what the exporters emit.
        use crate::json::JsonObject;
        let mut text = String::new();
        let mut o = JsonObject::new(&mut text);
        o.field("key", "pr|KG-N|1|None")
            .field("count", &123_456_789_u64)
            .field("rate", &0.125_f64)
            .field("none", &Option::<u64>::None);
        o.finish();
        let v = JsonValue::parse(&text).expect("parse exporter output");
        assert_eq!(
            v.get("key").and_then(JsonValue::as_str),
            Some("pr|KG-N|1|None")
        );
        assert_eq!(
            v.get("count").and_then(JsonValue::as_u64),
            Some(123_456_789)
        );
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(0.125));
        assert!(v.get("none").expect("none").is_null());
    }
}
