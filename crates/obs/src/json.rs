//! Hand-rolled JSON emission: the [`ToJson`] trait plus escaping, number
//! formatting, and object/array writer helpers.
//!
//! This replaces the serde derives the platform used to carry. Output is
//! strict RFC 8259 JSON: strings are escaped, non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity), and integers are emitted verbatim.
//! Emission only — the platform writes results; it never parses them.

use hemu_types::{AccessKind, Addr, ByteSize, Cycles, LineAddr, MemoryAccess, PageNum, PhysAddr};

/// Serialize `self` as a JSON value appended to a `String` buffer.
///
/// Implementations append exactly one JSON value (object, array, number,
/// string, …) with no trailing whitespace. Use [`ToJson::to_json`] for a
/// standalone document.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number, or `null` when `v` is NaN or infinite
/// (JSON has no representation for non-finite floats).
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display for finite f64 is valid JSON
        // (digits, optional sign/point/exponent).
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for a JSON object: `{"a":1,"b":"x"}`.
///
/// Call [`JsonObject::finish`] to emit the closing brace.
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Opens an object on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        JsonObject { out, first: true }
    }

    /// Writes one `"name": value` member.
    pub fn field<T: ToJson + ?Sized>(&mut self, name: &str, value: &T) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    /// Writes one `"name": value` member whose value is emitted by `f`
    /// writing directly to the output buffer — for nested objects or
    /// arrays that have no dedicated `ToJson` type.
    pub fn raw_field(&mut self, name: &str, f: impl FnOnce(&mut String)) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(self.out, name);
        self.out.push(':');
        f(self.out);
        self
    }

    /// Closes the object.
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Incremental writer for a JSON array: `[1,2,3]`.
pub struct JsonArray<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonArray<'a> {
    /// Opens an array on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('[');
        JsonArray { out, first: true }
    }

    /// Writes one element.
    pub fn element<T: ToJson + ?Sized>(&mut self, value: &T) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.write_json(self.out);
        self
    }

    /// Closes the array.
    pub fn finish(self) {
        self.out.push(']');
    }
}

/// Renders an iterator of values as JSONL: one JSON document per line.
pub fn to_json_lines<'t, T, I>(items: I) -> String
where
    T: ToJson + 't,
    I: IntoIterator<Item = &'t T>,
{
    let mut out = String::new();
    for item in items {
        item.write_json(&mut out);
        out.push('\n');
    }
    out
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        }
    )*};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        push_json_f64(out, *self);
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        push_json_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        push_json_str(out, self);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (*self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        let mut arr = JsonArray::new(out);
        for item in self {
            arr.element(item);
        }
        arr.finish();
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

// --- hemu-types primitives ------------------------------------------------
// These render as their raw numeric payloads: consumers get plain numbers
// (bytes, cycles, indices) rather than nested wrapper objects.

impl ToJson for Addr {
    fn write_json(&self, out: &mut String) {
        self.raw().write_json(out);
    }
}

impl ToJson for PhysAddr {
    fn write_json(&self, out: &mut String) {
        self.raw().write_json(out);
    }
}

impl ToJson for LineAddr {
    fn write_json(&self, out: &mut String) {
        self.raw().write_json(out);
    }
}

impl ToJson for PageNum {
    fn write_json(&self, out: &mut String) {
        self.raw().write_json(out);
    }
}

impl ToJson for hemu_types::SocketId {
    fn write_json(&self, out: &mut String) {
        self.index().write_json(out);
    }
}

impl ToJson for ByteSize {
    fn write_json(&self, out: &mut String) {
        self.bytes().write_json(out);
    }
}

impl ToJson for Cycles {
    fn write_json(&self, out: &mut String) {
        self.raw().write_json(out);
    }
}

impl ToJson for AccessKind {
    fn write_json(&self, out: &mut String) {
        push_json_str(
            out,
            match self {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
            },
        );
    }
}

impl ToJson for MemoryAccess {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("addr", &self.addr)
            .field("size", &self.size)
            .field("kind", &self.kind);
        obj.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(r#"say "hi"\n"#.to_json(), r#""say \"hi\"\\n""#);
        assert_eq!("line\nbreak\ttab".to_json(), r#""line\nbreak\ttab""#);
        assert_eq!("\u{08}\u{0c}\r".to_json(), r#""\b\f\r""#);
        assert_eq!("\u{01}".to_json(), r#""\u0001""#);
        assert_eq!("héllo ☃".to_json(), "\"héllo ☃\"");
    }

    #[test]
    fn floats_format_as_json_numbers() {
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(0.0f64.to_json(), "0");
        assert_eq!((-2.25f64).to_json(), "-2.25");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(f64::NEG_INFINITY.to_json(), "null");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [0.1, 1e-9, 123456.789, 2.0f64.powi(60), f64::MIN_POSITIVE] {
            let parsed: f64 = v.to_json().parse().unwrap();
            assert_eq!(parsed, v, "{v} did not round-trip");
        }
    }

    #[test]
    fn objects_and_arrays_compose() {
        let mut out = String::new();
        let mut obj = JsonObject::new(&mut out);
        obj.field("n", &3u64)
            .field("name", "x")
            .field("list", &vec![1u64, 2]);
        obj.finish();
        assert_eq!(out, r#"{"n":3,"name":"x","list":[1,2]}"#);
    }

    #[test]
    fn empty_object_and_array() {
        let mut out = String::new();
        JsonObject::new(&mut out).finish();
        JsonArray::new(&mut out).finish();
        assert_eq!(out, "{}[]");
    }

    #[test]
    fn option_serializes_as_value_or_null() {
        assert_eq!(Some(4u64).to_json(), "4");
        assert_eq!(None::<u64>.to_json(), "null");
    }

    #[test]
    fn primitives_render_as_raw_numbers() {
        assert_eq!(Addr::new(64).to_json(), "64");
        assert_eq!(ByteSize::from_kib(4).to_json(), "4096");
        assert_eq!(Cycles::new(7).to_json(), "7");
        assert_eq!(hemu_types::SocketId::PCM.to_json(), "1");
        assert_eq!(AccessKind::Write.to_json(), "\"write\"");
    }

    #[test]
    fn jsonl_is_one_document_per_line() {
        let rows = vec![1u64, 2, 3];
        assert_eq!(to_json_lines(rows.iter()), "1\n2\n3\n");
    }
}
