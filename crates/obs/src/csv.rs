//! Minimal CSV emission (RFC 4180 quoting) for time-series exports.

use std::fmt::Display;

/// Incremental CSV document builder.
///
/// ```
/// use hemu_obs::Csv;
/// let mut csv = Csv::new(&["t_seconds", "pcm_write_mbs"]);
/// csv.row(&[&0.5, &123.4]);
/// assert_eq!(csv.finish(), "t_seconds,pcm_write_mbs\n0.5,123.4\n");
/// ```
#[derive(Debug, Default)]
pub struct Csv {
    out: String,
    columns: usize,
}

impl Csv {
    /// Starts a document with a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut csv = Csv {
            out: String::new(),
            columns: header.len(),
        };
        csv.raw_row(header.iter().map(|s| s.to_string()));
        csv
    }

    /// Appends one data row; each cell is rendered with `Display`.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns, "CSV row width mismatch");
        self.raw_row(cells.iter().map(|c| c.to_string()));
    }

    fn raw_row(&mut self, cells: impl Iterator<Item = String>) {
        let mut first = true;
        for cell in cells {
            if !first {
                self.out.push(',');
            }
            first = false;
            push_csv_field(&mut self.out, &cell);
        }
        self.out.push('\n');
    }

    /// Returns the finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Appends one field, quoting it if it contains a comma, quote, or newline.
pub fn push_csv_field(out: &mut String, field: &str) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.row(&[&1u64, &2.5f64]);
        assert_eq!(csv.finish(), "a,b\n1,2.5\n");
    }

    #[test]
    fn special_fields_are_quoted() {
        let mut out = String::new();
        push_csv_field(&mut out, "x,y");
        out.push(' ');
        push_csv_field(&mut out, "say \"hi\"");
        out.push(' ');
        push_csv_field(&mut out, "two\nlines");
        assert_eq!(out, "\"x,y\" \"say \"\"hi\"\"\" \"two\nlines\"");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.row(&[&1u64]);
    }

    /// RFC 4180 end-to-end at the document level: commas, quotes, CR/LF,
    /// and combinations must all arrive quoted (and quotes doubled), in
    /// header and data rows alike.
    #[test]
    fn document_escapes_special_fields_rfc4180() {
        let mut csv = Csv::new(&["key", "note"]);
        csv.row(&[&"lusearch,KG-N,1,emulation", &"plain"]);
        csv.row(&[&"say \"hi\"", &"two\nlines"]);
        csv.row(&[&"crlf\r\nrow", &"both,\"and\"\nmore"]);
        assert_eq!(
            csv.finish(),
            "key,note\n\
             \"lusearch,KG-N,1,emulation\",plain\n\
             \"say \"\"hi\"\"\",\"two\nlines\"\n\
             \"crlf\r\nrow\",\"both,\"\"and\"\"\nmore\"\n"
        );
    }

    #[test]
    fn header_fields_are_escaped_too() {
        let csv = Csv::new(&["a,b", "plain"]);
        assert_eq!(csv.finish(), "\"a,b\",plain\n");
    }
}
