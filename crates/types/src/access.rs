//! Memory access records: what a core issues to the memory hierarchy.

use crate::addr::Addr;
use crate::error::{HemuError, Result};
use std::fmt;

/// Which implementation of the machine's access hot path to run.
///
/// Both paths are proven bit-identical by the cache crate's reference-model
/// suite; the choice only affects wall-clock throughput. `Scalar` is kept
/// as the executable specification the batch pipeline is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPath {
    /// Per-line dispatch through the monolithic cache hierarchy — the
    /// reference implementation.
    Scalar,
    /// Struct-of-arrays batch pipeline over the set-sharded hierarchy
    /// (translate a whole batch, group lines by shard, resolve per shard,
    /// merge in submission order).
    #[default]
    Batched,
}

impl AccessPath {
    /// Stable lower-case name used in flags and bench results.
    pub const fn name(self) -> &'static str {
        match self {
            AccessPath::Scalar => "scalar",
            AccessPath::Batched => "batched",
        }
    }

    /// Parses a `--access-path` flag value.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] for anything but `scalar` or
    /// `batched`.
    pub fn parse(s: &str) -> Result<AccessPath> {
        match s.trim() {
            "scalar" => Ok(AccessPath::Scalar),
            "batched" => Ok(AccessPath::Batched),
            other => Err(HemuError::InvalidConfig(format!(
                "unknown access path `{other}` (expected scalar or batched)"
            ))),
        }
    }
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the runtime layers hand their memory traffic to the machine.
///
/// Under `Deferred`, word-sized operations append to the machine's
/// submission buffer and flush through the batch pipeline at semantic
/// boundaries; under `Scalar`, every `Machine::submit` resolves
/// immediately, exactly like a direct `Machine::access` call. Both modes
/// produce byte-identical run artifacts (the deferred flush is only taken
/// when no order-sensitive observer is active); the choice only affects
/// wall-clock throughput, `Scalar` being kept as the executable
/// specification deferral is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SubmitMode {
    /// Buffer submissions and flush them in batches (the fast default).
    #[default]
    Deferred,
    /// Resolve every submission immediately (the reference behavior).
    Scalar,
}

impl SubmitMode {
    /// Stable lower-case name used in flags and bench results.
    pub const fn name(self) -> &'static str {
        match self {
            SubmitMode::Deferred => "deferred",
            SubmitMode::Scalar => "scalar",
        }
    }

    /// Parses a `--submit` flag value.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] for anything but `deferred` or
    /// `scalar`.
    pub fn parse(s: &str) -> Result<SubmitMode> {
        match s.trim() {
            "deferred" => Ok(SubmitMode::Deferred),
            "scalar" => Ok(SubmitMode::Scalar),
            other => Err(HemuError::InvalidConfig(format!(
                "unknown submit mode `{other}` (expected deferred or scalar)"
            ))),
        }
    }
}

impl fmt::Display for SubmitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// One memory access issued by an emulated thread: a virtual address range
/// plus a read/write kind.
///
/// The machine splits a `MemoryAccess` into per-cache-line accesses before
/// it reaches the cache hierarchy.
///
/// # Examples
///
/// ```
/// use hemu_types::{Addr, AccessKind, MemoryAccess};
/// let a = MemoryAccess::write(Addr::new(0x100), 256);
/// assert_eq!(a.kind, AccessKind::Write);
/// assert_eq!(a.lines().count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// First byte touched.
    pub addr: Addr,
    /// Number of bytes touched.
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates a read access of `size` bytes at `addr`.
    pub const fn read(addr: Addr, size: u32) -> Self {
        MemoryAccess {
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access of `size` bytes at `addr`.
    pub const fn write(addr: Addr, size: u32) -> Self {
        MemoryAccess {
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// Iterates over the (virtual) cache-line base addresses this access
    /// touches, in ascending order.
    ///
    /// A zero-sized access touches no lines.
    pub fn lines(&self) -> LineIter {
        let first = self.addr.line().raw();
        let last = if self.size == 0 {
            0
        } else {
            self.addr.offset(self.size as u64 - 1).line().raw()
        };
        LineIter {
            next: first,
            last,
            done: self.size == 0,
        }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}+{}", self.kind, self.addr, self.size)
    }
}

/// Iterator over virtual line base addresses of a [`MemoryAccess`];
/// produced by [`MemoryAccess::lines`].
#[derive(Debug, Clone)]
pub struct LineIter {
    next: u64,
    last: u64,
    done: bool,
}

impl Iterator for LineIter {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        if self.done {
            return None;
        }
        let cur = self.next;
        if cur >= self.last {
            self.done = true;
        }
        self.next = cur + crate::size::CACHE_LINE as u64;
        Some(Addr::new(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_touches_one_line() {
        let a = MemoryAccess::read(Addr::new(0x7f), 1);
        let lines: Vec<_> = a.lines().collect();
        assert_eq!(lines, vec![Addr::new(0x40)]);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let a = MemoryAccess::write(Addr::new(0x3e), 4);
        let lines: Vec<_> = a.lines().collect();
        assert_eq!(lines, vec![Addr::new(0x0), Addr::new(0x40)]);
    }

    #[test]
    fn large_access_touches_every_line_once() {
        let a = MemoryAccess::write(Addr::new(0), 64 * 10);
        assert_eq!(a.lines().count(), 10);
    }

    #[test]
    fn zero_size_touches_nothing() {
        let a = MemoryAccess::read(Addr::new(0x40), 0);
        assert_eq!(a.lines().count(), 0);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
