//! Foundational vocabulary types for the `hemu` hybrid-memory emulation
//! platform.
//!
//! This crate defines the small, widely shared types that every other crate
//! in the workspace builds on: virtual and physical [`addr`]esses, byte
//! [`size`] quantities, memory [`access`] records, the virtual [`clock`],
//! the deterministic [`rng`], and the platform-wide [`HemuError`] type.
//!
//! # Examples
//!
//! ```
//! use hemu_types::{Addr, ByteSize, CACHE_LINE};
//!
//! let a = Addr::new(0x1000_0040);
//! assert_eq!(a.line(), Addr::new(0x1000_0040)); // already line-aligned
//! assert_eq!(ByteSize::from_mib(4).bytes(), 4 * 1024 * 1024);
//! assert_eq!(CACHE_LINE, 64);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod clock;
pub mod error;
pub mod os;
pub mod provenance;
pub mod rng;
pub mod size;

pub use access::{AccessKind, AccessPath, MemoryAccess, SubmitMode};
pub use addr::{Addr, LineAddr, PageNum, PhysAddr, SocketId};
pub use clock::{Cycles, VirtualClock};
pub use error::{HemuError, Result};
pub use os::{OsPagingConfig, OsPolicy};
pub use provenance::{SpaceTag, WriteCause, WriteTag};
pub use rng::DeterministicRng;
pub use size::{ByteSize, CACHE_LINE, CHUNK_SIZE, GIB, KIB, MIB, PAGE_SIZE, WORD};
