//! Virtual time: cycle counts and the per-context virtual clock.
//!
//! The emulator derives write *rates* (MB/s) from virtual time rather than
//! wall-clock time, so results are deterministic. Virtual time advances by a
//! cycle cost per instruction and per memory-hierarchy event, converted to
//! seconds through the core frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A number of core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts to seconds at the given core frequency (Hz).
    pub fn as_seconds(self, freq_hz: u64) -> f64 {
        self.0 as f64 / freq_hz as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A monotonically advancing virtual clock for one emulated hardware context.
///
/// # Examples
///
/// ```
/// use hemu_types::{Cycles, VirtualClock};
/// let mut clk = VirtualClock::new(2_000_000_000);
/// clk.advance(Cycles::new(4_000_000_000));
/// assert_eq!(clk.now(), Cycles::new(4_000_000_000));
/// assert!((clk.seconds() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualClock {
    now: Cycles,
    freq_hz: u64,
}

impl VirtualClock {
    /// Creates a clock at time zero ticking at `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be positive");
        VirtualClock {
            now: Cycles::ZERO,
            freq_hz,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Core frequency in Hz.
    pub fn frequency_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Advances the clock. The clock never goes backwards.
    pub fn advance(&mut self, by: Cycles) {
        self.now += by;
    }

    /// Fast-forwards to `to` if it is later than the current time (used when
    /// synchronizing contexts at a barrier).
    pub fn sync_to(&mut self, to: Cycles) {
        if to > self.now {
            self.now = to;
        }
    }

    /// Current virtual time in seconds.
    pub fn seconds(&self) -> f64 {
        self.now.as_seconds(self.freq_hz)
    }

    /// Resets the clock to zero (start of a measured iteration).
    pub fn reset(&mut self) {
        self.now = Cycles::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new(1_000);
        c.advance(Cycles::new(10));
        c.advance(Cycles::new(5));
        assert_eq!(c.now(), Cycles::new(15));
    }

    #[test]
    fn seconds_uses_frequency() {
        let mut c = VirtualClock::new(2_000);
        c.advance(Cycles::new(1_000));
        assert!((c.seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sync_to_never_rewinds() {
        let mut c = VirtualClock::new(1_000);
        c.advance(Cycles::new(100));
        c.sync_to(Cycles::new(50));
        assert_eq!(c.now(), Cycles::new(100));
        c.sync_to(Cycles::new(200));
        assert_eq!(c.now(), Cycles::new(200));
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = VirtualClock::new(1_000);
        c.advance(Cycles::new(100));
        c.reset();
        assert_eq!(c.now(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = VirtualClock::new(0);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [Cycles::new(1), Cycles::new(2)].into_iter().sum();
        assert_eq!(total, Cycles::new(3));
    }
}
