//! Write provenance: why a memory write happened and which heap space it
//! targeted.
//!
//! The paper's central analytical move is *attribution* — write rationing
//! works because, broken down by cause and space, nursery/mutator writes
//! dominate the PCM write stream. A [`WriteTag`] is the vocabulary for that
//! breakdown: a packed `(cause, space)` pair small enough to store per cache
//! line and to travel with dirty lines through the cache hierarchy until
//! they are written back to a memory controller.
//!
//! Tags are advisory metadata: they never influence simulation behaviour,
//! only accounting. The packed representation is a `u8` (cause in the low
//! nibble, space in the high nibble) so a disabled profiler stores nothing
//! and an enabled one stores one byte per cached line.

/// Why a line was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum WriteCause {
    /// Application (mutator) store: field write, array write, allocation
    /// zeroing, or the write barrier's fast path.
    #[default]
    Mutator = 0,
    /// GC copying a survivor out of the nursery (or observer space).
    NurseryEvac = 1,
    /// GC copying or compacting an object already in the mature heap.
    MatureCopy = 2,
    /// Runtime metadata: remembered-set buffers, mark state, forwarding
    /// pointers, metadata-slot maintenance.
    Metadata = 3,
    /// The OS page manager migrating a physical page between sockets.
    OsMigration = 4,
    /// Transparent page remapping after a wear-out retirement.
    WearRemap = 5,
    /// Anything not otherwise attributed (native/malloc traffic, boot-time
    /// image writes).
    Other = 6,
}

impl WriteCause {
    /// Every cause, in stable export order.
    pub const ALL: [WriteCause; 7] = [
        WriteCause::Mutator,
        WriteCause::NurseryEvac,
        WriteCause::MatureCopy,
        WriteCause::Metadata,
        WriteCause::OsMigration,
        WriteCause::WearRemap,
        WriteCause::Other,
    ];

    /// Stable snake_case name used in metric keys and exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            WriteCause::Mutator => "mutator",
            WriteCause::NurseryEvac => "nursery_evac",
            WriteCause::MatureCopy => "mature_copy",
            WriteCause::Metadata => "metadata",
            WriteCause::OsMigration => "os_migration",
            WriteCause::WearRemap => "wear_remap",
            WriteCause::Other => "other",
        }
    }

    fn from_raw(raw: u8) -> Self {
        *WriteCause::ALL
            .get(raw as usize)
            .unwrap_or(&WriteCause::Other)
    }
}

/// Which heap space a write targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum SpaceTag {
    /// The DRAM (or PCM, under PCM-Only) nursery.
    Nursery = 0,
    /// The observer space (KG-W write partitioning).
    Observer = 1,
    /// Mature space bound to DRAM.
    MatureDram = 2,
    /// Mature space bound to PCM.
    MaturePcm = 3,
    /// Large-object spaces (either socket).
    Large = 4,
    /// Metadata spaces (remset buffers, metadata slots).
    Meta = 5,
    /// Not a managed-heap address (native heap, boot image) or unknown.
    #[default]
    Other = 6,
}

impl SpaceTag {
    /// Every space, in stable export order.
    pub const ALL: [SpaceTag; 7] = [
        SpaceTag::Nursery,
        SpaceTag::Observer,
        SpaceTag::MatureDram,
        SpaceTag::MaturePcm,
        SpaceTag::Large,
        SpaceTag::Meta,
        SpaceTag::Other,
    ];

    /// Stable snake_case name used in metric keys and exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpaceTag::Nursery => "nursery",
            SpaceTag::Observer => "observer",
            SpaceTag::MatureDram => "mature_dram",
            SpaceTag::MaturePcm => "mature_pcm",
            SpaceTag::Large => "large",
            SpaceTag::Meta => "meta",
            SpaceTag::Other => "other",
        }
    }

    fn from_raw(raw: u8) -> Self {
        *SpaceTag::ALL.get(raw as usize).unwrap_or(&SpaceTag::Other)
    }
}

/// A packed `(cause, space)` provenance tag: cause in the low nibble,
/// space in the high nibble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WriteTag(u8);

impl WriteTag {
    /// The default tag: an unattributed write (`Other`/`Other`).
    pub const OTHER: WriteTag =
        WriteTag((WriteCause::Other as u8) | ((SpaceTag::Other as u8) << 4));

    /// Packs a cause and a space into one byte.
    pub fn new(cause: WriteCause, space: SpaceTag) -> Self {
        WriteTag((cause as u8) | ((space as u8) << 4))
    }

    /// The raw packed byte (stored per cache line by the profiler).
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Reconstructs a tag from its packed byte. Out-of-range nibbles decode
    /// as `Other`.
    pub fn from_raw(raw: u8) -> Self {
        WriteTag::new(
            WriteCause::from_raw(raw & 0x0f),
            SpaceTag::from_raw(raw >> 4),
        )
    }

    /// The cause nibble.
    pub fn cause(self) -> WriteCause {
        WriteCause::from_raw(self.0 & 0x0f)
    }

    /// The space nibble.
    pub fn space(self) -> SpaceTag {
        SpaceTag::from_raw(self.0 >> 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips_every_pair() {
        for &cause in &WriteCause::ALL {
            for &space in &SpaceTag::ALL {
                let tag = WriteTag::new(cause, space);
                assert_eq!(tag.cause(), cause);
                assert_eq!(tag.space(), space);
                assert_eq!(WriteTag::from_raw(tag.raw()), tag);
            }
        }
    }

    #[test]
    fn out_of_range_nibbles_decode_as_other() {
        let tag = WriteTag::from_raw(0xff);
        assert_eq!(tag.cause(), WriteCause::Other);
        assert_eq!(tag.space(), SpaceTag::Other);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let causes: std::collections::HashSet<_> =
            WriteCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(causes.len(), WriteCause::ALL.len());
        let spaces: std::collections::HashSet<_> = SpaceTag::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(spaces.len(), SpaceTag::ALL.len());
        assert_eq!(WriteCause::Mutator.name(), "mutator");
        assert_eq!(SpaceTag::MaturePcm.name(), "mature_pcm");
    }

    #[test]
    fn default_tag_is_unattributed() {
        assert_eq!(WriteTag::OTHER.cause(), WriteCause::Other);
        assert_eq!(WriteTag::OTHER.space(), SpaceTag::Other);
        assert_eq!(WriteTag::from_raw(WriteTag::OTHER.raw()), WriteTag::OTHER);
    }
}
