//! The platform-wide error type.

use crate::addr::{Addr, SocketId};
use crate::size::ByteSize;
use std::fmt;

/// Convenience alias for results with [`HemuError`].
pub type Result<T> = std::result::Result<T, HemuError>;

/// Errors produced by the emulation platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HemuError {
    /// A socket ran out of physical memory.
    OutOfPhysicalMemory {
        /// The exhausted socket.
        socket: SocketId,
        /// The allocation that failed.
        requested: ByteSize,
    },
    /// A virtual address was accessed without a page-table mapping.
    UnmappedAddress {
        /// The faulting virtual address.
        addr: Addr,
    },
    /// The managed heap cannot satisfy an allocation even after collection.
    OutOfHeapMemory {
        /// The allocation that failed.
        requested: ByteSize,
        /// Human-readable name of the space that was exhausted.
        space: &'static str,
    },
    /// The native (malloc) heap is exhausted.
    OutOfNativeMemory {
        /// The allocation that failed.
        requested: ByteSize,
    },
    /// An experiment configuration is invalid.
    InvalidConfig(String),
    /// Writing an export artifact (JSON report, trace, CSV) failed.
    Io(String),
    /// An experiment exceeded its wall-clock deadline.
    Timeout {
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// A deliberately injected fault (see the `hemu-fault` crate).
    FaultInjected {
        /// Which injection point fired (e.g. `"frame-alloc"`, `"forced-oom"`).
        kind: &'static str,
        /// Transient faults may succeed when the operation is retried;
        /// persistent ones will fail identically every time.
        transient: bool,
    },
    /// A socket has lost so many lines to wear-out that a retired page can
    /// no longer be remapped to a healthy frame.
    WornOut {
        /// The worn-out socket.
        socket: SocketId,
        /// Pages retired on that socket before capacity ran out.
        retired_pages: u64,
    },
    /// An experiment panicked; the panic was caught at the harness boundary
    /// and converted into an error so the rest of a sweep can proceed.
    Panicked(String),
    /// A resume journal belongs to a different sweep plan (or binary
    /// version) than the one being resumed; replaying it would silently
    /// mix experiment configurations, so the harness refuses.
    JournalMismatch {
        /// Plan hash of the sweep being resumed.
        expected: String,
        /// Plan hash recorded in the journal on disk.
        found: String,
    },
    /// A run was deferred to a batch executor instead of running inline.
    ///
    /// Produced only while a sweep harness is *planning* (collecting the
    /// set of runs a figure demands so they can execute in parallel); it
    /// never appears in exported artifacts because planning passes discard
    /// their output.
    Deferred {
        /// The memoization key of the deferred run.
        key: String,
    },
}

impl fmt::Display for HemuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HemuError::OutOfPhysicalMemory { socket, requested } => {
                write!(
                    f,
                    "socket {socket} out of physical memory (requested {requested})"
                )
            }
            HemuError::UnmappedAddress { addr } => {
                write!(f, "access to unmapped virtual address {addr}")
            }
            HemuError::OutOfHeapMemory { requested, space } => {
                write!(
                    f,
                    "managed heap out of memory in {space} (requested {requested})"
                )
            }
            HemuError::OutOfNativeMemory { requested } => {
                write!(f, "native heap out of memory (requested {requested})")
            }
            HemuError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HemuError::Io(msg) => write!(f, "export i/o error: {msg}"),
            HemuError::Timeout { deadline_ms } => {
                write!(f, "experiment exceeded its {deadline_ms} ms deadline")
            }
            HemuError::FaultInjected { kind, transient } => {
                let nature = if *transient {
                    "transient"
                } else {
                    "persistent"
                };
                write!(f, "injected {nature} fault: {kind}")
            }
            HemuError::WornOut {
                socket,
                retired_pages,
            } => {
                write!(
                    f,
                    "socket {socket} worn out ({retired_pages} pages retired, no healthy frame left)"
                )
            }
            HemuError::JournalMismatch { expected, found } => {
                write!(
                    f,
                    "resume journal plan hash {found} does not match this sweep plan {expected} \
                     (different flags, targets, or binary version)"
                )
            }
            HemuError::Panicked(msg) => write!(f, "experiment panicked: {msg}"),
            HemuError::Deferred { key } => {
                write!(f, "run deferred to the parallel executor: {key}")
            }
        }
    }
}

impl std::error::Error for HemuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = HemuError::UnmappedAddress {
            addr: Addr::new(0x40),
        };
        let msg = format!("{e}");
        assert!(msg.contains("unmapped"));
        assert!(msg.contains("0x40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HemuError>();
    }

    #[test]
    fn fault_display_distinguishes_transience() {
        let t = HemuError::FaultInjected {
            kind: "frame-alloc",
            transient: true,
        };
        let p = HemuError::FaultInjected {
            kind: "forced-oom",
            transient: false,
        };
        assert!(format!("{t}").contains("transient"));
        assert!(format!("{p}").contains("persistent"));
        assert!(format!("{p}").contains("forced-oom"));
    }

    #[test]
    fn timeout_and_wear_display_their_parameters() {
        let t = HemuError::Timeout { deadline_ms: 1500 };
        assert!(format!("{t}").contains("1500"));
        let w = HemuError::WornOut {
            socket: SocketId::new(1),
            retired_pages: 12,
        };
        let msg = format!("{w}");
        assert!(msg.contains("worn out"));
        assert!(msg.contains("12"));
    }

    #[test]
    fn journal_mismatch_displays_both_hashes() {
        let e = HemuError::JournalMismatch {
            expected: "aaaa0000aaaa0000".to_string(),
            found: "bbbb1111bbbb1111".to_string(),
        };
        let msg = format!("{e}");
        assert!(msg.contains("aaaa0000aaaa0000"));
        assert!(msg.contains("bbbb1111bbbb1111"));
    }

    #[test]
    fn oom_mentions_space() {
        let e = HemuError::OutOfHeapMemory {
            requested: ByteSize::from_kib(4),
            space: "nursery",
        };
        assert!(format!("{e}").contains("nursery"));
    }
}
