//! The platform-wide error type.

use crate::addr::{Addr, SocketId};
use crate::size::ByteSize;
use std::fmt;

/// Convenience alias for results with [`HemuError`].
pub type Result<T> = std::result::Result<T, HemuError>;

/// Errors produced by the emulation platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HemuError {
    /// A socket ran out of physical memory.
    OutOfPhysicalMemory {
        /// The exhausted socket.
        socket: SocketId,
        /// The allocation that failed.
        requested: ByteSize,
    },
    /// A virtual address was accessed without a page-table mapping.
    UnmappedAddress {
        /// The faulting virtual address.
        addr: Addr,
    },
    /// The managed heap cannot satisfy an allocation even after collection.
    OutOfHeapMemory {
        /// The allocation that failed.
        requested: ByteSize,
        /// Human-readable name of the space that was exhausted.
        space: &'static str,
    },
    /// The native (malloc) heap is exhausted.
    OutOfNativeMemory {
        /// The allocation that failed.
        requested: ByteSize,
    },
    /// An experiment configuration is invalid.
    InvalidConfig(String),
    /// Writing an export artifact (JSON report, trace, CSV) failed.
    Io(String),
}

impl fmt::Display for HemuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HemuError::OutOfPhysicalMemory { socket, requested } => {
                write!(
                    f,
                    "socket {socket} out of physical memory (requested {requested})"
                )
            }
            HemuError::UnmappedAddress { addr } => {
                write!(f, "access to unmapped virtual address {addr}")
            }
            HemuError::OutOfHeapMemory { requested, space } => {
                write!(
                    f,
                    "managed heap out of memory in {space} (requested {requested})"
                )
            }
            HemuError::OutOfNativeMemory { requested } => {
                write!(f, "native heap out of memory (requested {requested})")
            }
            HemuError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HemuError::Io(msg) => write!(f, "export i/o error: {msg}"),
        }
    }
}

impl std::error::Error for HemuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = HemuError::UnmappedAddress {
            addr: Addr::new(0x40),
        };
        let msg = format!("{e}");
        assert!(msg.contains("unmapped"));
        assert!(msg.contains("0x40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HemuError>();
    }

    #[test]
    fn oom_mentions_space() {
        let e = HemuError::OutOfHeapMemory {
            requested: ByteSize::from_kib(4),
            space: "nursery",
        };
        assert!(format!("{e}").contains("nursery"));
    }
}
