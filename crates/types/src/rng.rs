//! Deterministic random numbers.
//!
//! All stochastic choices in the platform (synthetic workload shapes, graph
//! generation, allocation size draws) come from [`DeterministicRng`], a PCG64
//! generator with a documented, version-stable stream. Experiments are
//! therefore pure functions of their configuration and seed.
//!
//! The generator is implemented in-tree (no external crates) as PCG
//! XSL-RR 128/64 — the algorithm known as `Pcg64` in the Rust `rand_pcg`
//! crate and as `pcg64` in the reference PCG library. Seeding, stream
//! derivation, bounded sampling and float conversion reproduce the exact
//! bit streams the platform produced when it still depended on
//! `rand` 0.8 + `rand_pcg` 0.3, so all experiment results are stable
//! across the dependency removal.

/// The 128-bit LCG multiplier of the reference PCG implementation.
const PCG128_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG XSL-RR 128/64: a 128-bit linear congruential generator whose state
/// is mixed down to 64 output bits with an xor-shift-low + random rotate.
///
/// The period is 2¹²⁸ per stream; odd `increment` values select among 2¹²⁷
/// distinct streams.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Constructs the generator from a state/stream pair, as
    /// `Lcg128Xsl64::new` does: `increment = (stream << 1) | 1`.
    ///
    /// Only the reference-vector test exercises this entry point; the
    /// platform itself always seeds through [`Pcg64::seed_from_u64`].
    #[cfg_attr(not(test), allow(dead_code))]
    fn new(state: u128, stream: u128) -> Self {
        Self::from_state_incr(state, (stream << 1) | 1)
    }

    /// Constructs from a 32-byte seed laid out as four little-endian `u64`
    /// words: the low two words form the initial state, the high two the
    /// stream increment (forced odd).
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut w = [0u64; 4];
        for (i, word) in w.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        let state = w[0] as u128 | ((w[1] as u128) << 64);
        let incr = w[2] as u128 | ((w[3] as u128) << 64);
        Self::from_state_incr(state, incr | 1)
    }

    fn from_state_incr(state: u128, increment: u128) -> Self {
        let mut pcg = Pcg64 {
            state: state.wrapping_add(increment),
            increment,
        };
        pcg.step();
        pcg
    }

    /// Expands a 64-bit seed into a 32-byte seed with the PCG32-based
    /// key-stretching routine `rand_core` 0.6 uses for `seed_from_u64`, so
    /// seeded streams match the historical ones bit for bit.
    fn seed_from_u64(seed: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(bytes)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG128_MULT)
            .wrapping_add(self.increment);
    }

    /// Advances the LCG and mixes the new state down to 64 bits
    /// (xor-shift-low, random rotate).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }
}

/// A seeded, reproducible random number generator.
///
/// Thin wrapper around PCG64 that hides the concrete generator from the
/// public API (C-NEWTYPE-HIDE) and offers the handful of draw shapes the
/// platform needs.
///
/// # Examples
///
/// ```
/// use hemu_types::DeterministicRng;
/// let mut a = DeterministicRng::seeded(42);
/// let mut b = DeterministicRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: Pcg64,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        DeterministicRng {
            inner: Pcg64::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream, e.g. one per workload instance.
    ///
    /// Mixing the label into the seed keeps sibling streams uncorrelated.
    pub fn fork(&mut self, label: u64) -> DeterministicRng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DeterministicRng::seeded(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses the widening-multiply rejection method (`rand` 0.8's
    /// single-sample path), so draws match the historical streams.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Reject values that fall past the largest multiple of `bound`,
        // leaving a bias-free uniform sample.
        let zone = (bound << bound.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (bound as u128);
            let (hi, lo) = ((wide >> 64) as u64, wide as u64);
            if lo <= zone {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi - lo))
    }

    /// Uniform float in `[0, 1)`, from the top 53 bits of one draw.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A draw from a truncated geometric-like distribution over `[min, max]`,
    /// skewed toward `min`. Used for object-size distributions where most
    /// objects are small and a few are large.
    pub fn skewed(&mut self, min: u64, max: u64) -> u64 {
        assert!(min <= max, "skewed: min must be <= max");
        if min == max {
            return min;
        }
        // Sample an exponent uniformly, giving a log-uniform distribution.
        let lo = (min as f64).ln();
        let hi = (max as f64 + 1.0).ln();
        let x = (lo + self.unit_f64() * (hi - lo)).exp();
        (x as u64).clamp(min, max)
    }

    /// A Zipf-like draw in `[0, n)` with exponent `theta` (0 = uniform,
    /// larger = more skew). Used for power-law vertex popularity.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf: n must be positive");
        if theta <= f64::EPSILON {
            return self.below(n);
        }
        // Inverse-CDF approximation of a bounded Pareto.
        let u = self.unit_f64();
        let x = ((n as f64).powf(1.0 - theta) * u + (1.0 - u)).powf(1.0 / (1.0 - theta));
        (x as u64 - 1).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference PCG demo program's first outputs for
    /// `pcg64(42, 54)` — the canonical cross-implementation check for
    /// XSL-RR 128/64 with `increment = (stream << 1) | 1`.
    #[test]
    fn matches_the_reference_pcg64_vector() {
        let mut g = Pcg64::new(42, 54);
        let expected: [u64; 6] = [
            0x86b1_da1d_7206_2b68,
            0x1304_aa46_c985_3d39,
            0xa367_0e9e_0dd5_0358,
            0xf909_0e52_9a7d_ae00,
            0xc85b_9fd8_3799_6f2c,
            0x6061_21f8_e391_9196,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e, "reference stream diverged");
        }
    }

    /// Golden values pinning the seeded stream for seed 42: any change to
    /// seeding or output mixing silently alters every experiment, so the
    /// first draws are frozen here.
    #[test]
    fn seed_42_stream_is_pinned() {
        let mut r = DeterministicRng::seeded(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x39fc_b970_a300_1809,
                0x3d36_1897_2c55_d911,
                0xc2c5_fa78_9a8b_6a2d,
                0x8720_7ff1_e296_60ec,
            ],
            "seeded(42) stream diverged from the pinned golden values"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seeded(7);
        let mut b = DeterministicRng::seeded(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = DeterministicRng::seeded(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DeterministicRng::seeded(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_small_ranges_uniformly() {
        let mut r = DeterministicRng::seeded(9);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((800..1200).contains(c), "bucket {i} got {c} of 4000 draws");
        }
    }

    #[test]
    fn unit_f64_is_a_half_open_unit_draw() {
        let mut r = DeterministicRng::seeded(11);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn skewed_stays_in_range_and_prefers_small() {
        let mut r = DeterministicRng::seeded(2);
        let mut small = 0;
        for _ in 0..2000 {
            let v = r.skewed(16, 4096);
            assert!((16..=4096).contains(&v));
            if v < 256 {
                small += 1;
            }
        }
        // Log-uniform over [16, 4096]: [16,256) covers half the log range.
        assert!(
            small > 700,
            "distribution should be skewed small, got {small}"
        );
    }

    #[test]
    fn zipf_in_bounds_and_skewed() {
        let mut r = DeterministicRng::seeded(3);
        let mut head = 0;
        for _ in 0..2000 {
            let v = r.zipf(1000, 0.8);
            assert!(v < 1000);
            if v < 100 {
                head += 1;
            }
        }
        assert!(head > 800, "zipf head should dominate, got {head}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
