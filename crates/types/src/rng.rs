//! Deterministic random numbers.
//!
//! All stochastic choices in the platform (synthetic workload shapes, graph
//! generation, allocation size draws) come from [`DeterministicRng`], a PCG64
//! generator with a documented, version-stable stream. Experiments are
//! therefore pure functions of their configuration and seed.

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;

/// A seeded, reproducible random number generator.
///
/// Thin wrapper around PCG64 that hides the concrete generator from the
/// public API (C-NEWTYPE-HIDE) and offers the handful of draw shapes the
/// platform needs.
///
/// # Examples
///
/// ```
/// use hemu_types::DeterministicRng;
/// let mut a = DeterministicRng::seeded(42);
/// let mut b = DeterministicRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: Pcg64,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        DeterministicRng { inner: Pcg64::seed_from_u64(seed) }
    }

    /// Derives an independent child stream, e.g. one per workload instance.
    ///
    /// Mixing the label into the seed keeps sibling streams uncorrelated.
    pub fn fork(&mut self, label: u64) -> DeterministicRng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DeterministicRng::seeded(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A draw from a truncated geometric-like distribution over `[min, max]`,
    /// skewed toward `min`. Used for object-size distributions where most
    /// objects are small and a few are large.
    pub fn skewed(&mut self, min: u64, max: u64) -> u64 {
        assert!(min <= max, "skewed: min must be <= max");
        if min == max {
            return min;
        }
        // Sample an exponent uniformly, giving a log-uniform distribution.
        let lo = (min as f64).ln();
        let hi = (max as f64 + 1.0).ln();
        let x = (lo + self.unit_f64() * (hi - lo)).exp();
        (x as u64).clamp(min, max)
    }

    /// A Zipf-like draw in `[0, n)` with exponent `theta` (0 = uniform,
    /// larger = more skew). Used for power-law vertex popularity.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf: n must be positive");
        if theta <= f64::EPSILON {
            return self.below(n);
        }
        // Inverse-CDF approximation of a bounded Pareto.
        let u = self.unit_f64();
        let x = ((n as f64).powf(1.0 - theta) * u + (1.0 - u)).powf(1.0 / (1.0 - theta));
        (x as u64 - 1).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seeded(7);
        let mut b = DeterministicRng::seeded(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = DeterministicRng::seeded(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DeterministicRng::seeded(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn skewed_stays_in_range_and_prefers_small() {
        let mut r = DeterministicRng::seeded(2);
        let mut small = 0;
        for _ in 0..2000 {
            let v = r.skewed(16, 4096);
            assert!((16..=4096).contains(&v));
            if v < 256 {
                small += 1;
            }
        }
        // Log-uniform over [16, 4096]: [16,256) covers half the log range.
        assert!(small > 700, "distribution should be skewed small, got {small}");
    }

    #[test]
    fn zipf_in_bounds_and_skewed() {
        let mut r = DeterministicRng::seeded(3);
        let mut head = 0;
        for _ in 0..2000 {
            let v = r.zipf(1000, 0.8);
            assert!(v < 1000);
            if v < 100 {
                head += 1;
            }
        }
        assert!(head > 800, "zipf head should dominate, got {head}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
