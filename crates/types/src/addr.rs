//! Address newtypes: virtual addresses, physical addresses, page numbers,
//! cache-line addresses and socket identifiers.
//!
//! Newtypes keep the different address spaces statically distinct
//! (C-NEWTYPE): a [`PhysAddr`] produced by the page table can never be
//! accidentally fed back in where a virtual [`Addr`] is expected.

use crate::size::{CACHE_LINE, PAGE_SIZE};
use std::fmt;

/// A virtual address in an emulated process address space.
///
/// # Examples
///
/// ```
/// use hemu_types::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.offset(0x10).raw(), 0x1244);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null virtual address.
    pub const NULL: Addr = Addr(0);

    /// Creates a virtual address from a raw value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space (debug builds).
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns the address of the cache line containing `self`.
    pub const fn line(self) -> Addr {
        Addr(self.0 & !(CACHE_LINE as u64 - 1))
    }

    /// Returns the virtual page number containing `self`.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_SIZE as u64)
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    ///
    /// `align` must be a power of two.
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0 & (align - 1) == 0
    }

    /// Rounds the address up to the next multiple of `align` (a power of two).
    pub const fn align_up(self, align: u64) -> Addr {
        Addr((self.0 + align - 1) & !(align - 1))
    }

    /// Byte distance from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier > self`.
    pub fn distance_from(self, earlier: Addr) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("Addr::distance_from: earlier address is greater")
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A physical address in the emulated machine's memory.
///
/// Physical addresses are produced by page-table translation and identify a
/// location inside one socket's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical cache-line address containing `self`.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHE_LINE as u64)
    }

    /// Returns the physical frame (page) number containing `self`.
    pub const fn frame(self) -> PageNum {
        PageNum(self.0 / PAGE_SIZE as u64)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Self {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phys:0x{:x}", self.0)
    }
}

/// A physical cache-line number (physical address divided by the line size).
///
/// Cache tags and memory-controller write-back records are keyed by
/// `LineAddr` so a 64-byte line has exactly one identity everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line number from a raw value.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first physical byte address of this line.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 * CACHE_LINE as u64)
    }

    /// Returns the physical frame containing this line.
    pub const fn frame(self) -> PageNum {
        PageNum(self.0 * CACHE_LINE as u64 / PAGE_SIZE as u64)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{}", self.0)
    }
}

/// A page (or frame) number: address divided by the 4 KiB page size.
///
/// Used both for virtual page numbers and for physical frame numbers; the
/// page table maps one to the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

impl PageNum {
    /// Creates a page number from a raw value.
    pub const fn new(raw: u64) -> Self {
        PageNum(raw)
    }

    /// Returns the raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this page (virtual interpretation).
    pub const fn base(self) -> Addr {
        Addr(self.0 * PAGE_SIZE as u64)
    }

    /// Returns the first byte address of this page (physical interpretation).
    pub const fn phys_base(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE as u64)
    }

    /// Returns the page number advanced by `n` pages.
    pub const fn offset(self, n: u64) -> PageNum {
        PageNum(self.0 + n)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{}", self.0)
    }
}

/// Identifies one socket (NUMA node) of the emulated machine.
///
/// The emulation platform uses [`SocketId::DRAM`] (socket 0, local — the
/// threads run here) to emulate DRAM and [`SocketId::PCM`] (socket 1,
/// remote) to emulate PCM, exactly as the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(u8);

impl SocketId {
    /// Socket 0: the local socket, emulating DRAM.
    pub const DRAM: SocketId = SocketId(0);
    /// Socket 1: the remote socket, emulating PCM.
    pub const PCM: SocketId = SocketId(1);

    /// Creates a socket id from a raw index.
    pub const fn new(raw: u8) -> Self {
        SocketId(raw)
    }

    /// Returns the raw socket index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the (emulated) PCM socket.
    pub const fn is_pcm(self) -> bool {
        self.0 == 1
    }
}

impl Default for SocketId {
    fn default() -> Self {
        SocketId::DRAM
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SocketId::DRAM => write!(f, "S0(DRAM)"),
            SocketId::PCM => write!(f, "S1(PCM)"),
            SocketId(n) => write!(f, "S{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment_masks_low_bits() {
        assert_eq!(Addr::new(0x1003f).line(), Addr::new(0x10000));
        assert_eq!(Addr::new(0x10040).line(), Addr::new(0x10040));
    }

    #[test]
    fn page_round_trip() {
        let a = Addr::new(0x12345);
        assert_eq!(a.page().raw(), 0x12);
        assert_eq!(a.page().base(), Addr::new(0x12000));
    }

    #[test]
    fn align_up_is_idempotent_on_aligned() {
        let a = Addr::new(4096);
        assert_eq!(a.align_up(4096), a);
        assert_eq!(Addr::new(1).align_up(4096), Addr::new(4096));
    }

    #[test]
    fn phys_line_and_frame() {
        let p = PhysAddr::new(0x1fff);
        assert_eq!(p.line().raw(), 0x1fff / 64);
        assert_eq!(p.frame().raw(), 1);
        assert_eq!(p.line().base().raw() % 64, 0);
    }

    #[test]
    fn socket_roles() {
        assert!(SocketId::PCM.is_pcm());
        assert!(!SocketId::DRAM.is_pcm());
        assert_eq!(SocketId::DRAM.index(), 0);
        assert_eq!(format!("{}", SocketId::PCM), "S1(PCM)");
    }

    #[test]
    fn distance_from_counts_bytes() {
        assert_eq!(Addr::new(100).distance_from(Addr::new(40)), 60);
    }

    #[test]
    #[should_panic(expected = "earlier address is greater")]
    fn distance_from_panics_when_reversed() {
        let _ = Addr::new(40).distance_from(Addr::new(100));
    }

    #[test]
    fn line_addr_frame_relation() {
        // 64 lines per 4 KiB page.
        assert_eq!(LineAddr::new(63).frame().raw(), 0);
        assert_eq!(LineAddr::new(64).frame().raw(), 1);
    }
}
