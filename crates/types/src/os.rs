//! OS-level page-placement vocabulary: policies and their tuning knobs.
//!
//! The paper's platform supports two owners of the DRAM/PCM split: the
//! language runtime (the Kingsguard collectors) and the operating system's
//! virtual-memory layer (first-touch placement plus hot/cold page
//! migration). These types name the OS-side design points so the rest of
//! the stack can sweep a workload under either manager.

use crate::error::{HemuError, Result};
use crate::size::ByteSize;
use std::fmt;

/// An OS page-placement policy: who decides which socket a page lives on
/// when the kernel, not the GC, owns placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OsPolicy {
    /// First-touch into DRAM; spill to PCM once DRAM is exhausted. No
    /// migration — the classic local-allocation default.
    DramFirst,
    /// First-touch into PCM; spill to DRAM once PCM is exhausted. The
    /// adversarial baseline: every page starts on the wear-limited device.
    PcmFirst,
    /// First-touch into DRAM with spill, plus an epoch-driven hot-page
    /// migrator: each epoch, write-hot PCM pages are promoted to DRAM and
    /// cold DRAM pages are demoted to make room, under a migration budget.
    HotCold,
}

impl OsPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [OsPolicy; 3] = [OsPolicy::DramFirst, OsPolicy::PcmFirst, OsPolicy::HotCold];

    /// Stable display name used in run keys, reports and figures
    /// (`OS-dram-first`, `OS-pcm-first`, `OS-hot-cold`).
    pub fn name(self) -> &'static str {
        match self {
            OsPolicy::DramFirst => "OS-dram-first",
            OsPolicy::PcmFirst => "OS-pcm-first",
            OsPolicy::HotCold => "OS-hot-cold",
        }
    }

    /// Parses the CLI spelling (`dram-first`, `pcm-first`, `hot-cold`).
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] for an unknown name.
    pub fn parse(s: &str) -> Result<OsPolicy> {
        match s.trim() {
            "dram-first" => Ok(OsPolicy::DramFirst),
            "pcm-first" => Ok(OsPolicy::PcmFirst),
            "hot-cold" => Ok(OsPolicy::HotCold),
            other => Err(HemuError::InvalidConfig(format!(
                "unknown OS policy `{other}` (expected dram-first, pcm-first or hot-cold)"
            ))),
        }
    }
}

impl fmt::Display for OsPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning of an OS-managed run: the policy plus the hot-page migrator's
/// knobs (ignored by the non-migrating policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsPagingConfig {
    /// The placement policy.
    pub policy: OsPolicy,
    /// Epoch length in machine line accesses between migration decisions.
    pub epoch_lines: u64,
    /// Maximum pages moved (promotions + demotions) per epoch.
    pub migration_budget: u64,
    /// A PCM page is promotion-hot when its per-epoch write count reaches
    /// this threshold.
    pub hot_write_threshold: u64,
    /// When set, DRAM capacity visible to the OS run is clamped to this
    /// size, so first-touch placement actually faces pressure (the default
    /// 8 GiB socket never fills under the benchmark working sets).
    pub dram_limit: Option<ByteSize>,
}

impl OsPagingConfig {
    /// A config for `policy` with the default migrator tuning.
    pub fn new(policy: OsPolicy) -> Self {
        OsPagingConfig {
            policy,
            epoch_lines: 200_000,
            migration_budget: 64,
            hot_write_threshold: 8,
            dram_limit: None,
        }
    }
}

impl Default for OsPagingConfig {
    fn default() -> Self {
        OsPagingConfig::new(OsPolicy::HotCold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(OsPolicy::DramFirst.name(), "OS-dram-first");
        assert_eq!(OsPolicy::PcmFirst.name(), "OS-pcm-first");
        assert_eq!(OsPolicy::HotCold.name(), "OS-hot-cold");
        assert_eq!(format!("{}", OsPolicy::HotCold), "OS-hot-cold");
    }

    #[test]
    fn parse_round_trips_cli_spellings() {
        assert_eq!(OsPolicy::parse("dram-first").unwrap(), OsPolicy::DramFirst);
        assert_eq!(OsPolicy::parse(" pcm-first ").unwrap(), OsPolicy::PcmFirst);
        assert_eq!(OsPolicy::parse("hot-cold").unwrap(), OsPolicy::HotCold);
        assert!(matches!(
            OsPolicy::parse("numa-balancing"),
            Err(HemuError::InvalidConfig(_))
        ));
    }

    #[test]
    fn default_config_is_hot_cold_with_sane_knobs() {
        let c = OsPagingConfig::default();
        assert_eq!(c.policy, OsPolicy::HotCold);
        assert!(c.epoch_lines > 0);
        assert!(c.migration_budget > 0);
        assert!(c.hot_write_threshold > 0);
        assert!(c.dram_limit.is_none());
    }
}
