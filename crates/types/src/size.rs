//! Byte-size constants and the [`ByteSize`] quantity type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// One kibibyte.
pub const KIB: usize = 1024;
/// One mebibyte.
pub const MIB: usize = 1024 * KIB;
/// One gibibyte.
pub const GIB: usize = 1024 * MIB;
/// Cache line size in bytes. All caches and memory controllers in the
/// emulated machine move data in units of this size.
pub const CACHE_LINE: usize = 64;
/// Virtual-memory page size in bytes (4 KiB, as on the paper's platform).
pub const PAGE_SIZE: usize = 4 * KIB;
/// Heap chunk size: the minimum unit of virtual memory handed to a space,
/// 4 MiB as in Jikes RVM (paper §III.A).
pub const CHUNK_SIZE: usize = 4 * MIB;
/// Machine word size in bytes (the emulated JVM is 32-bit in the paper, but
/// we model a 64-bit word as modern runtimes do; object-size accounting only).
pub const WORD: usize = 8;

/// A quantity of bytes with human-readable formatting.
///
/// # Examples
///
/// ```
/// use hemu_types::ByteSize;
/// let s = ByteSize::from_mib(4);
/// assert_eq!(s.bytes(), 4 * 1024 * 1024);
/// assert_eq!(format!("{s}"), "4.00 MiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a quantity from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a quantity of `n` kibibytes.
    pub const fn from_kib(n: u64) -> Self {
        ByteSize(n * KIB as u64)
    }

    /// Creates a quantity of `n` mebibytes.
    pub const fn from_mib(n: u64) -> Self {
        ByteSize(n * MIB as u64)
    }

    /// Creates a quantity of `n` gibibytes.
    pub const fn from_gib(n: u64) -> Self {
        ByteSize(n * GIB as u64)
    }

    /// Returns the raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in mebibytes as a float (for reporting).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Returns the number of whole cache lines covered by this size.
    ///
    /// Rounds up: any partial trailing line counts as a full line, because
    /// the memory system always moves whole lines.
    pub const fn lines(self) -> u64 {
        self.0.div_ceil(CACHE_LINE as u64)
    }

    /// Returns the number of whole pages covered, rounding up.
    pub const fn pages(self) -> u64 {
        self.0.div_ceil(PAGE_SIZE as u64)
    }

    /// Returns the number of whole chunks covered, rounding up.
    pub const fn chunks(self) -> u64 {
        self.0.div_ceil(CHUNK_SIZE as u64)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= GIB as u64 {
            write!(f, "{:.2} GiB", b / GIB as f64)
        } else if self.0 >= MIB as u64 {
            write!(f, "{:.2} MiB", b / MIB as f64)
        } else if self.0 >= KIB as u64 {
            write!(f, "{:.2} KiB", b / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(ByteSize::from_kib(2).bytes(), 2048);
        assert_eq!(ByteSize::from_mib(1).bytes(), MIB as u64);
        assert_eq!(ByteSize::from_gib(1).bytes(), GIB as u64);
    }

    #[test]
    fn lines_round_up() {
        assert_eq!(ByteSize::new(1).lines(), 1);
        assert_eq!(ByteSize::new(64).lines(), 1);
        assert_eq!(ByteSize::new(65).lines(), 2);
        assert_eq!(ByteSize::ZERO.lines(), 0);
    }

    #[test]
    fn pages_and_chunks_round_up() {
        assert_eq!(ByteSize::new(4097).pages(), 2);
        assert_eq!(ByteSize::from_mib(4).chunks(), 1);
        assert_eq!(ByteSize::new(4 * MIB as u64 + 1).chunks(), 2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", ByteSize::new(512)), "512 B");
        assert_eq!(format!("{}", ByteSize::from_kib(4)), "4.00 KiB");
        assert_eq!(format!("{}", ByteSize::from_gib(2)), "2.00 GiB");
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: ByteSize = [ByteSize::new(10), ByteSize::new(20)].into_iter().sum();
        assert_eq!(total.bytes(), 30);
        assert_eq!((total - ByteSize::new(5)).bytes(), 25);
        assert_eq!(
            ByteSize::new(5).saturating_sub(ByteSize::new(9)),
            ByteSize::ZERO
        );
    }
}
