//! Process-exit chaos: abrupt kills for crash-safety self-tests.
//!
//! The crash-safe sweep layer in `hemu-bench` claims that a sweep killed
//! at any instant can be resumed to byte-identical artifacts. The other
//! injectors in this crate exercise *in-process* failures (allocation
//! faults, OOM, stalls) that the harness catches and retries; this one
//! exercises the failure the harness cannot catch — the process dying.
//!
//! [`ChaosKill`] counts committed runs and, when armed with
//! `--chaos-kill-after <n>`, tells the harness to terminate the process
//! abruptly (no destructors, no export finalization) right after the Nth
//! run commits. CI uses it to prove run → kill → resume → identical-diff
//! end-to-end.

/// Exit code used for a chaos-induced abrupt exit. Matches the exit code
/// a SIGKILLed process reports through the shell (128 + 9), so scripts
/// can treat a chaos exit like a real kill.
pub const CHAOS_EXIT_CODE: i32 = 137;

/// Counts run commits and fires once after a configured number.
///
/// Disarmed by default; [`ChaosKill::after`] arms it. The decision to
/// actually exit the process is left to the caller (the bench harness),
/// keeping this crate free of process-global side effects.
#[derive(Debug, Clone, Default)]
pub struct ChaosKill {
    /// Remaining commits before the kill fires; `None` = disarmed.
    remaining: Option<u64>,
}

impl ChaosKill {
    /// A disarmed hook: [`ChaosKill::on_commit`] never fires.
    pub fn disarmed() -> Self {
        ChaosKill::default()
    }

    /// Arms the hook to fire after `n` commits. `n = 0` fires on the
    /// very first commit.
    pub fn after(n: u64) -> Self {
        ChaosKill { remaining: Some(n) }
    }

    /// Whether the hook is armed.
    pub fn armed(&self) -> bool {
        self.remaining.is_some()
    }

    /// Records one committed run. Returns `true` when the caller must
    /// now kill the process (with [`CHAOS_EXIT_CODE`]); at most one call
    /// ever returns `true`.
    pub fn on_commit(&mut self) -> bool {
        match &mut self.remaining {
            None => false,
            Some(0) => {
                self.remaining = None;
                true
            }
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.remaining = None;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let mut c = ChaosKill::disarmed();
        assert!(!c.armed());
        for _ in 0..100 {
            assert!(!c.on_commit());
        }
    }

    #[test]
    fn fires_exactly_once_after_n_commits() {
        let mut c = ChaosKill::after(3);
        assert!(c.armed());
        assert!(!c.on_commit());
        assert!(!c.on_commit());
        assert!(c.on_commit(), "third commit must fire");
        // Never fires again, even if the caller ignores the signal.
        for _ in 0..10 {
            assert!(!c.on_commit());
        }
        assert!(!c.armed());
    }

    #[test]
    fn zero_fires_on_first_commit() {
        let mut c = ChaosKill::after(0);
        assert!(c.on_commit());
        assert!(!c.on_commit());
    }
}
