//! Per-line PCM write-endurance budgets.

use hemu_types::{DeterministicRng, HemuError, LineAddr, Result};

/// Configuration of the PCM endurance model.
///
/// Real PCM cells endure a bounded number of writes (the paper's lifetime
/// analysis assumes 10⁶–10⁸ depending on technology); manufacturing
/// variability makes some cells fail well before the mean. Both knobs are
/// captured here, and the whole model is deterministic in `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceConfig {
    /// Mean per-line write budget before the line fails.
    pub budget_writes: u64,
    /// Relative cell-to-cell spread in `[0, 1]`: a line's actual budget is
    /// uniform in `budget_writes * [1 - variability, 1 + variability]`.
    pub variability: f64,
    /// Seed of the per-line budget sampling.
    pub seed: u64,
}

impl Default for EnduranceConfig {
    fn default() -> Self {
        EnduranceConfig {
            budget_writes: 1_000_000,
            variability: 0.1,
            seed: 0x0E9D,
        }
    }
}

impl EnduranceConfig {
    /// A deliberately tiny budget so tests and smoke runs retire pages
    /// within seconds of simulated work.
    pub fn smoke() -> Self {
        EnduranceConfig {
            budget_writes: 64,
            variability: 0.25,
            ..Self::default()
        }
    }

    /// Parses an endurance spec string: `smoke`, or a comma-separated
    /// `key=value` list with keys `budget`, `variability`, `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] on unknown keys or malformed
    /// values.
    pub fn parse(spec: &str) -> Result<EnduranceConfig> {
        if spec.trim() == "smoke" {
            return Ok(Self::smoke());
        }
        let mut cfg = Self::default();
        for item in spec.split(',') {
            let item = item.trim();
            let Some((key, value)) = item.split_once('=') else {
                return Err(HemuError::InvalidConfig(format!(
                    "endurance item `{item}` is not `key=value`"
                )));
            };
            let bad = |what: &str| {
                HemuError::InvalidConfig(format!("endurance `{key}`: invalid {what} `{value}`"))
            };
            match key {
                "budget" => {
                    let b: u64 = value.parse().map_err(|_| bad("integer"))?;
                    if b == 0 {
                        return Err(bad("budget (must be >= 1)"));
                    }
                    cfg.budget_writes = b;
                }
                "variability" => {
                    let v: f64 = value.parse().map_err(|_| bad("fraction"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(bad("fraction"));
                    }
                    cfg.variability = v;
                }
                "seed" => cfg.seed = value.parse().map_err(|_| bad("integer"))?,
                _ => {
                    return Err(HemuError::InvalidConfig(format!(
                        "unknown endurance key `{key}`"
                    )));
                }
            }
        }
        Ok(cfg)
    }
}

/// Samples each line's write budget deterministically from the config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    cfg: EnduranceConfig,
}

impl EnduranceModel {
    /// Creates the model.
    pub fn new(cfg: EnduranceConfig) -> Self {
        EnduranceModel { cfg }
    }

    /// The configuration this model samples from.
    pub fn config(&self) -> &EnduranceConfig {
        &self.cfg
    }

    /// The write budget of one line: a pure function of `(seed, line)`.
    ///
    /// Budgets are clamped to at least 2 so that the writes performed while
    /// migrating a retired page to its replacement frame cannot immediately
    /// wear the replacement out and cascade retirement across the socket.
    pub fn line_budget(&self, line: LineAddr) -> u64 {
        let mut rng = DeterministicRng::seeded(
            self.cfg.seed ^ line.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let spread = 1.0 + self.cfg.variability * (2.0 * rng.unit_f64() - 1.0);
        ((self.cfg.budget_writes as f64 * spread).round() as u64).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_budget_is_deterministic_and_in_range() {
        let m = EnduranceModel::new(EnduranceConfig {
            budget_writes: 1000,
            variability: 0.2,
            seed: 42,
        });
        for i in 0..500u64 {
            let line = LineAddr::new(i * 37);
            let b = m.line_budget(line);
            assert_eq!(b, m.line_budget(line), "budget must be stable");
            assert!((800..=1200).contains(&b), "line {i}: budget {b}");
        }
    }

    #[test]
    fn zero_variability_gives_uniform_budgets() {
        let m = EnduranceModel::new(EnduranceConfig {
            budget_writes: 512,
            variability: 0.0,
            seed: 1,
        });
        assert_eq!(m.line_budget(LineAddr::new(3)), 512);
        assert_eq!(m.line_budget(LineAddr::new(999)), 512);
    }

    #[test]
    fn budgets_never_drop_below_two() {
        let m = EnduranceModel::new(EnduranceConfig {
            budget_writes: 1,
            variability: 1.0,
            seed: 7,
        });
        for i in 0..200u64 {
            assert!(m.line_budget(LineAddr::new(i)) >= 2);
        }
    }

    #[test]
    fn parse_presets_and_keys() {
        assert_eq!(EnduranceConfig::parse("smoke").unwrap().budget_writes, 64);
        let c = EnduranceConfig::parse("budget=5000,variability=0.5,seed=11").unwrap();
        assert_eq!(c.budget_writes, 5000);
        assert_eq!(c.variability, 0.5);
        assert_eq!(c.seed, 11);
        assert!(EnduranceConfig::parse("budget=0").is_err());
        assert!(EnduranceConfig::parse("variability=1.5").is_err());
        assert!(EnduranceConfig::parse("wat=1").is_err());
    }
}
