//! The fault plan: a declarative, parseable description of what to inject.

use hemu_types::{HemuError, Result};

/// A periodic stall burst on the QPI interconnect: after every
/// `period_lines` remote line transfers, the link stalls for `stall_cycles`
/// cycles (emulating, e.g., thermal throttling or a retrained link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpiBurst {
    /// Remote line transfers between consecutive stalls.
    pub period_lines: u64,
    /// Extra latency charged per stall, in cycles.
    pub stall_cycles: u64,
}

/// A deterministic fault-injection plan.
///
/// The default plan is inert — every field off — so installing
/// `FaultPlan::default()` is observationally identical to installing no
/// plan at all. Plans are usually built from a spec string via
/// [`FaultPlan::parse`]:
///
/// - `none` — the inert plan;
/// - `smoke` — a light preset used by the CI smoke run: a small transient
///   frame-allocation failure probability plus a mild QPI stall burst;
/// - a comma-separated `key=value` list with keys `seed`, `alloc_p`
///   (transient frame-allocation failure probability), `oom_at` (force an
///   out-of-memory error at the Nth managed allocation), `qpi_period` /
///   `qpi_cycles` (stall burst shape), and `only` (apply the plan only to
///   runs whose harness key contains this substring).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection randomness stream (independent from the
    /// workload seed, so adding faults never perturbs workload shapes).
    pub seed: u64,
    /// Probability that any single physical-frame allocation transiently
    /// fails. `0.0` disables the injection point.
    pub frame_alloc_p: f64,
    /// Force a persistent out-of-memory error at the Nth managed-heap
    /// allocation (1-based). `None` disables.
    pub oom_at_alloc: Option<u64>,
    /// Periodic QPI stall bursts. `None` disables.
    pub qpi_burst: Option<QpiBurst>,
    /// Restrict the plan to harness run keys containing this substring.
    pub only: Option<String>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            frame_alloc_p: 0.0,
            oom_at_alloc: None,
            qpi_burst: None,
            only: None,
        }
    }
}

impl FaultPlan {
    /// The inert plan: nothing is injected.
    pub fn none() -> Self {
        Self::default()
    }

    /// The CI smoke preset: exercises the transient-failure retry path and
    /// the QPI stall path without making any run fail persistently.
    pub fn smoke() -> Self {
        FaultPlan {
            frame_alloc_p: 1e-6,
            qpi_burst: Some(QpiBurst {
                period_lines: 1 << 16,
                stall_cycles: 10_000,
            }),
            ..Self::default()
        }
    }

    /// Parses a plan spec string (see the type-level docs for the format).
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] on unknown keys or malformed
    /// values.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        match spec.trim() {
            "none" | "off" | "" => return Ok(Self::none()),
            "smoke" => return Ok(Self::smoke()),
            _ => {}
        }
        let mut plan = Self::none();
        let mut qpi_period: Option<u64> = None;
        let mut qpi_cycles: Option<u64> = None;
        for item in spec.split(',') {
            let item = item.trim();
            let Some((key, value)) = item.split_once('=') else {
                return Err(HemuError::InvalidConfig(format!(
                    "fault plan item `{item}` is not `key=value`"
                )));
            };
            let bad = |what: &str| {
                HemuError::InvalidConfig(format!("fault plan `{key}`: invalid {what} `{value}`"))
            };
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("integer"))?,
                "alloc_p" => {
                    let p: f64 = value.parse().map_err(|_| bad("probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(bad("probability"));
                    }
                    plan.frame_alloc_p = p;
                }
                "oom_at" => {
                    let n: u64 = value.parse().map_err(|_| bad("integer"))?;
                    if n == 0 {
                        return Err(bad("allocation index (must be >= 1)"));
                    }
                    plan.oom_at_alloc = Some(n);
                }
                "qpi_period" => qpi_period = Some(value.parse().map_err(|_| bad("integer"))?),
                "qpi_cycles" => qpi_cycles = Some(value.parse().map_err(|_| bad("integer"))?),
                "only" => plan.only = Some(value.to_string()),
                _ => {
                    return Err(HemuError::InvalidConfig(format!(
                        "unknown fault plan key `{key}`"
                    )));
                }
            }
        }
        match (qpi_period, qpi_cycles) {
            (None, None) => {}
            (Some(p), Some(c)) if p > 0 => {
                plan.qpi_burst = Some(QpiBurst {
                    period_lines: p,
                    stall_cycles: c,
                });
            }
            _ => {
                return Err(HemuError::InvalidConfig(
                    "qpi burst needs both qpi_period (>= 1) and qpi_cycles".into(),
                ));
            }
        }
        Ok(plan)
    }

    /// Returns `true` if the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.frame_alloc_p == 0.0 && self.oom_at_alloc.is_none() && self.qpi_burst.is_none()
    }

    /// Returns `true` if the plan applies to a harness run with this key.
    pub fn applies_to(&self, run_key: &str) -> bool {
        match &self.only {
            Some(needle) => run_key.contains(needle.as_str()),
            None => true,
        }
    }

    /// Derives the plan for the given retry attempt (1-based).
    ///
    /// Attempt 1 keeps the base seed; later attempts mix the attempt index
    /// into the injection seed so a retried run does not deterministically
    /// hit the identical transient fault again. Everything else is
    /// unchanged, keeping retries comparable.
    pub fn for_attempt(&self, attempt: u32) -> FaultPlan {
        let mut plan = self.clone();
        plan.seed = self
            .seed
            .wrapping_add((attempt as u64 - 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::parse("none").unwrap().is_inert());
        assert!(FaultPlan::parse("off").unwrap().is_inert());
    }

    #[test]
    fn smoke_preset_is_active_but_not_fatal() {
        let p = FaultPlan::smoke();
        assert!(!p.is_inert());
        assert!(p.oom_at_alloc.is_none(), "smoke must not force failures");
    }

    #[test]
    fn key_value_parsing_round_trips() {
        let p = FaultPlan::parse("seed=9,alloc_p=0.25,oom_at=40,qpi_period=128,qpi_cycles=500")
            .unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.frame_alloc_p, 0.25);
        assert_eq!(p.oom_at_alloc, Some(40));
        assert_eq!(
            p.qpi_burst,
            Some(QpiBurst {
                period_lines: 128,
                stall_cycles: 500
            })
        );
    }

    #[test]
    fn only_restricts_by_substring() {
        let p = FaultPlan::parse("oom_at=1,only=avrora").unwrap();
        assert!(p.applies_to("avrora|gen-immix|1|None"));
        assert!(!p.applies_to("lusearch|gen-immix|1|None"));
        assert!(FaultPlan::none().applies_to("anything"));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("alloc_p=2.0").is_err());
        assert!(FaultPlan::parse("oom_at=0").is_err());
        assert!(FaultPlan::parse("qpi_period=10").is_err());
        assert!(FaultPlan::parse("qpi_period=0,qpi_cycles=5").is_err());
    }

    #[test]
    fn attempt_mixing_changes_only_the_seed() {
        let base = FaultPlan::parse("alloc_p=0.5,seed=3").unwrap();
        let first = base.for_attempt(1);
        let second = base.for_attempt(2);
        assert_eq!(first, base, "attempt 1 is the base plan");
        assert_ne!(second.seed, base.seed);
        assert_eq!(second.frame_alloc_p, base.frame_alloc_p);
    }

    #[test]
    fn attempt_reseeding_never_reuses_the_original_seed() {
        // The mix constant is odd, so (attempt-1) * C is never 0 mod 2^64
        // for attempt > 1 below the full 2^64 cycle; spot-check a broad
        // range of attempt numbers, including the extremes the retry
        // budget could conceivably reach.
        for seed in [0u64, 1, 0xFA17, u64::MAX] {
            let base = FaultPlan {
                seed,
                ..FaultPlan::none()
            };
            for attempt in (2u32..=64).chain([1000, u32::MAX - 1, u32::MAX]) {
                let derived = base.for_attempt(attempt);
                assert_ne!(
                    derived.seed, base.seed,
                    "attempt {attempt} reused the base seed {seed:#x}"
                );
            }
        }
    }

    #[test]
    fn attempt_reseeding_is_unique_per_attempt() {
        // Distinct attempts get distinct fault streams: a retried run
        // never re-rolls an earlier attempt's exact failures.
        let base = FaultPlan::parse("alloc_p=0.5,seed=3").unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for attempt in 1u32..=256 {
            assert!(
                seen.insert(base.for_attempt(attempt).seed),
                "attempt {attempt} collided with an earlier attempt's seed"
            );
        }
    }
}
