//! Deterministic fault injection and PCM endurance modeling.
//!
//! The paper measures writes to the PCM socket because writes determine PCM
//! lifetime; this crate closes the loop by modeling what those writes wear
//! out, and by letting experiments inject the failures a real hybrid-memory
//! machine would eventually produce. Everything here is driven by the
//! in-tree [`DeterministicRng`](hemu_types::DeterministicRng), so a faulty
//! run is exactly as reproducible as a healthy one: same config, same seed,
//! same faults, same result.
//!
//! Four pieces:
//!
//! - [`FaultPlan`] — a parseable description of *which* faults to inject:
//!   transient physical-frame allocation failures, a forced out-of-memory
//!   at the Nth managed allocation, and periodic QPI stall bursts.
//! - [`FaultInjector`] — the runtime object the memory system consults at
//!   each injection point. Library code answers injections with
//!   [`HemuError`](hemu_types::HemuError) values, never panics.
//! - [`EnduranceConfig`] / [`EnduranceModel`] — a per-line write-endurance
//!   budget for the PCM socket with deterministic cell-to-cell variability.
//!   When a line exceeds its budget the NUMA layer retires the containing
//!   frame and remaps the page transparently (see `hemu-numa`).
//! - [`ChaosKill`] — a commit-counting hook for the one failure no
//!   in-process injector can model: the process being killed. The bench
//!   harness uses it (`repro --chaos-kill-after`) to self-test crash-safe
//!   resume end-to-end.
//!
//! # Examples
//!
//! ```
//! use hemu_fault::{FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::parse("oom_at=100,seed=7").unwrap();
//! let mut inj = FaultInjector::new(plan);
//! for _ in 0..99 {
//!     assert!(inj.on_managed_alloc().is_ok());
//! }
//! assert!(inj.on_managed_alloc().is_err()); // the 100th allocation fails
//! ```

#![warn(missing_docs)]

mod chaos;
mod endurance;
mod inject;
mod plan;

pub use chaos::{ChaosKill, CHAOS_EXIT_CODE};
pub use endurance::{EnduranceConfig, EnduranceModel};
pub use inject::FaultInjector;
pub use plan::{FaultPlan, QpiBurst};
