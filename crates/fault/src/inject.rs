//! The runtime fault injector consulted at each injection point.

use crate::plan::FaultPlan;
use hemu_types::{DeterministicRng, HemuError, Result};

/// Executes a [`FaultPlan`] against a running experiment.
///
/// The injector owns its own [`DeterministicRng`] stream seeded from the
/// plan, so injected faults are a pure function of the plan — independent
/// of the workload's randomness and of wall-clock time.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DeterministicRng,
    managed_allocs: u64,
    qpi_line_phase: u64,
    frame_faults_injected: u64,
    stall_cycles_injected: u64,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = DeterministicRng::seeded(plan.seed);
        FaultInjector {
            plan,
            rng,
            managed_allocs: 0,
            qpi_line_phase: 0,
            frame_faults_injected: 0,
            stall_cycles_injected: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection point: one physical-frame allocation is about to happen.
    ///
    /// # Errors
    ///
    /// Returns a transient [`HemuError::FaultInjected`] with probability
    /// `plan.frame_alloc_p`.
    pub fn on_frame_alloc(&mut self) -> Result<()> {
        if self.plan.frame_alloc_p > 0.0 && self.rng.chance(self.plan.frame_alloc_p) {
            self.frame_faults_injected += 1;
            return Err(HemuError::FaultInjected {
                kind: "frame-alloc",
                transient: true,
            });
        }
        Ok(())
    }

    /// Injection point: one managed-heap allocation is about to happen.
    ///
    /// # Errors
    ///
    /// Returns a persistent [`HemuError::FaultInjected`] from the Nth
    /// allocation onward when the plan sets `oom_at_alloc = Some(n)`. The
    /// error persists for later allocations so GC-and-retry slow paths
    /// cannot mask the injected exhaustion.
    pub fn on_managed_alloc(&mut self) -> Result<()> {
        self.managed_allocs += 1;
        if let Some(n) = self.plan.oom_at_alloc {
            if self.managed_allocs >= n {
                return Err(HemuError::FaultInjected {
                    kind: "forced-oom",
                    transient: false,
                });
            }
        }
        Ok(())
    }

    /// Injection point: `lines` cache lines just crossed the QPI link.
    ///
    /// Returns the extra stall cycles to charge (0 when no burst is due).
    pub fn on_remote_lines(&mut self, lines: u64) -> u64 {
        let Some(burst) = self.plan.qpi_burst else {
            return 0;
        };
        self.qpi_line_phase += lines;
        let mut stall = 0;
        while self.qpi_line_phase >= burst.period_lines {
            self.qpi_line_phase -= burst.period_lines;
            stall += burst.stall_cycles;
        }
        self.stall_cycles_injected += stall;
        stall
    }

    /// Transient frame-allocation faults injected so far.
    pub fn frame_faults_injected(&self) -> u64 {
        self.frame_faults_injected
    }

    /// QPI stall cycles injected so far.
    pub fn stall_cycles_injected(&self) -> u64 {
        self.stall_cycles_injected
    }

    /// Managed allocations observed so far.
    pub fn managed_allocs_seen(&self) -> u64 {
        self.managed_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::QpiBurst;

    #[test]
    fn inert_plan_never_injects() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..10_000 {
            assert!(inj.on_frame_alloc().is_ok());
            assert!(inj.on_managed_alloc().is_ok());
            assert_eq!(inj.on_remote_lines(64), 0);
        }
        assert_eq!(inj.frame_faults_injected(), 0);
        assert_eq!(inj.stall_cycles_injected(), 0);
    }

    #[test]
    fn same_plan_injects_identically() {
        let plan = FaultPlan::parse("alloc_p=0.1,seed=5").unwrap();
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..2000 {
            assert_eq!(a.on_frame_alloc().is_ok(), b.on_frame_alloc().is_ok());
        }
        assert!(a.frame_faults_injected() > 0, "p=0.1 must fire in 2000");
    }

    #[test]
    fn forced_oom_fires_at_nth_and_persists() {
        let plan = FaultPlan::parse("oom_at=3").unwrap();
        let mut inj = FaultInjector::new(plan);
        assert!(inj.on_managed_alloc().is_ok());
        assert!(inj.on_managed_alloc().is_ok());
        let err = inj.on_managed_alloc().unwrap_err();
        assert!(matches!(
            err,
            HemuError::FaultInjected {
                kind: "forced-oom",
                transient: false
            }
        ));
        assert!(inj.on_managed_alloc().is_err(), "error must persist");
    }

    #[test]
    fn qpi_bursts_fire_every_period() {
        let mut plan = FaultPlan::none();
        plan.qpi_burst = Some(QpiBurst {
            period_lines: 100,
            stall_cycles: 7,
        });
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_remote_lines(99), 0);
        assert_eq!(inj.on_remote_lines(1), 7);
        // A large batch can span multiple periods.
        assert_eq!(inj.on_remote_lines(250), 14);
        assert_eq!(inj.stall_cycles_injected(), 21);
    }
}
