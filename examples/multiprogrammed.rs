//! Multiprogrammed workloads: the super-linear growth of PCM writes under
//! LLC interference (the Fig. 4 experiment for one benchmark).
//!
//! ```text
//! cargo run --example multiprogrammed --release
//! ```

use hemu::core::Experiment;
use hemu::heap::CollectorKind;
use hemu::types::HemuError;
use hemu::workloads::WorkloadSpec;

fn main() -> Result<(), HemuError> {
    let spec = WorkloadSpec::by_name("xalan").expect("xalan is registered");

    println!(
        "Running 1, 2 and 4 simultaneous instances of xalan. All instances share the\n\
         20 MiB last-level cache; their combined nursery working sets stop fitting,\n\
         so dirty nursery lines spill to memory.\n"
    );
    for collector in [CollectorKind::PcmOnly, CollectorKind::KgW] {
        let mut base: Option<f64> = None;
        println!("{}:", collector.name());
        for n in [1usize, 2, 4] {
            let report = Experiment::new(spec)
                .collector(collector)
                .instances(n)
                .run()?;
            let writes = report.pcm_writes.bytes() as f64;
            let rel = base.map(|b| writes / b).unwrap_or(1.0);
            base = base.or(Some(writes));
            println!(
                "  N={n}: {:>10} to PCM ({:>6.1} MB/s) — {rel:.2}x the single instance",
                format!("{}", report.pcm_writes),
                report.pcm_write_rate_mbs,
            );
        }
    }
    println!(
        "\nPCM-Only grows super-linearly (interference); KG-W keeps the nursery in DRAM\n\
         and dampens the growth back to roughly linear — the paper's Finding 3."
    );
    Ok(())
}
