//! Scratch component profile of the access kernel (not shipped in CI).
use hemu::machine::{CtxId, Machine, MachineProfile};
use hemu_cache::{Hierarchy, HierarchyConfig, ShardedHierarchy, DEFAULT_SHARD_BITS};
use hemu_types::{AccessKind, Addr, LineAddr, MemoryAccess, SocketId};
use std::time::Instant;

const OPS: u64 = 1_000_000;
const REGION: u64 = 32 << 20;
const BATCH: usize = 4096;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state
}

fn main() {
    // 1. full machine access_batch (the real kernel)
    let mut m = Machine::new(MachineProfile::emulation());
    let p = m.add_process(SocketId::DRAM);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut batch = Vec::with_capacity(BATCH);
    let t0 = Instant::now();
    let mut i = 0u64;
    while i < OPS {
        batch.clear();
        while i < OPS && batch.len() < BATCH {
            let s = lcg(&mut state);
            let addr = Addr::new((s >> 16) % (REGION - 256));
            let access = if i % 4 == 0 {
                MemoryAccess::write(addr, 256)
            } else {
                MemoryAccess::read(addr, 256)
            };
            batch.push((CtxId((i % 4) as usize), p, access));
            i += 1;
        }
        m.access_batch(&batch).unwrap();
    }
    let lines = m.stats().line_accesses;
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "machine.access_batch: {:>8.1} ms   ({:.2} M lines/s, {} lines)",
        secs * 1e3,
        lines as f64 / secs / 1e6,
        lines
    );

    // 2. sharded hierarchy alone, batch API, pre-expanded lines
    let mut sh = ShardedHierarchy::new(HierarchyConfig::e5_2650l(8), DEFAULT_SHARD_BITS);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut stream: Vec<(usize, u64, AccessKind)> = Vec::new();
    for i in 0..OPS {
        let s = lcg(&mut state);
        let base = (s >> 16) % (REGION - 256);
        let kind = if i % 4 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        for l in base / 64..=(base + 255) / 64 {
            stream.push(((i % 4) as usize, l, kind));
        }
    }
    let mut t_enq = 0.0f64;
    let mut t_res = 0.0f64;
    let mut t_mrg = 0.0f64;
    let mut fills = 0u64;
    let mut wbs = 0u64;
    let mut levels = [0u64; 3];
    for chunk in stream.chunks(BATCH * 4) {
        let t = Instant::now();
        sh.begin_batch();
        for &(ctx, l, kind) in chunk {
            sh.enqueue(ctx, LineAddr::new(l), kind, 0);
        }
        t_enq += t.elapsed().as_secs_f64();
        let t = Instant::now();
        sh.resolve(1);
        t_res += t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &(_, l, _) in chunk {
            let (lv, fill, wb) = sh.next_outcome(LineAddr::new(l));
            levels[lv as usize] += 1;
            fills += fill.is_some() as u64;
            wbs += wb.len() as u64;
        }
        t_mrg += t.elapsed().as_secs_f64();
    }
    println!(
        "sharded enqueue:      {:>8.1} ms\nsharded resolve:      {:>8.1} ms   ({:.2} M lines/s)\nsharded drain:        {:>8.1} ms   (fills={fills} wbs={wbs})\nlevels: L2={} LLC={} MEM={}",
        t_enq * 1e3,
        t_res * 1e3,
        stream.len() as f64 / t_res / 1e6,
        t_mrg * 1e3,
        levels[0],
        levels[1],
        levels[2]
    );

    // 2c. bare cache stage costs: L2-alone and LLC-alone over the stream.
    {
        use hemu_cache::{Cache, CacheConfig};
        use hemu_types::ByteSize;
        let mut l2 = Cache::new(CacheConfig::new("L2", ByteSize::from_kib(256), 8));
        let t0 = Instant::now();
        let mut h = 0u64;
        for &(_, l, kind) in &stream {
            h += l2.access(LineAddr::new(l), kind).hit as u64;
        }
        println!(
            "bare L2 alone:        {:>8.1} ms   ({:.2} M lines/s, hits={h})",
            t0.elapsed().as_secs_f64() * 1e3,
            stream.len() as f64 / t0.elapsed().as_secs_f64() / 1e6
        );
        let mut llc = Cache::new(CacheConfig::new("LLC", ByteSize::from_mib(20), 20));
        let t0 = Instant::now();
        let mut h = 0u64;
        for &(_, l, kind) in &stream {
            h += llc.access(LineAddr::new(l), kind).hit as u64;
        }
        println!(
            "bare LLC alone:       {:>8.1} ms   ({:.2} M lines/s, hits={h})",
            t0.elapsed().as_secs_f64() * 1e3,
            stream.len() as f64 / t0.elapsed().as_secs_f64() / 1e6
        );
        let mut llc = Cache::new(CacheConfig::new("LLC", ByteSize::from_mib(20), 20));
        let t0 = Instant::now();
        let mut h = 0u64;
        for (i, &(_, l, kind)) in stream.iter().enumerate() {
            if let Some(&(_, nl, _)) = stream.get(i + 12) {
                llc.prefetch_set(LineAddr::new(nl));
            }
            h += llc.access(LineAddr::new(l), kind).hit as u64;
        }
        println!(
            "bare LLC prefetched:  {:>8.1} ms   ({:.2} M lines/s, hits={h})",
            t0.elapsed().as_secs_f64() * 1e3,
            stream.len() as f64 / t0.elapsed().as_secs_f64() / 1e6
        );
    }

    // 2d. shard-major floor with the real Cache type: per shard, 4 sub-L2s
    // + 1 sub-LLC accessed per line with zero hierarchy glue.
    {
        use hemu_cache::{Cache, CacheConfig};
        use hemu_types::ByteSize;
        const NSH: usize = 64;
        struct Sub {
            l2s: Vec<Cache>,
            llc: Cache,
        }
        let mut subs: Vec<Sub> = (0..NSH)
            .map(|_| Sub {
                l2s: (0..4)
                    .map(|_| Cache::new(CacheConfig::new("L2", ByteSize::new(256 << 10 >> 6), 8)))
                    .collect(),
                llc: Cache::new(CacheConfig::new("LLC", ByteSize::new(20 << 20 >> 6), 20)),
            })
            .collect();
        let mut queues: Vec<Vec<(u32, u64, bool)>> = vec![Vec::new(); NSH];
        let mut acc = 0u64;
        let t0 = Instant::now();
        for chunk in stream.chunks(BATCH * 4) {
            for q in &mut queues {
                q.clear();
            }
            for &(ctx, l, kind) in chunk {
                queues[(l & 63) as usize].push((ctx as u32, l >> 6, kind == AccessKind::Write));
            }
            for (s, q) in queues.iter().enumerate() {
                let sub = &mut subs[s];
                for &(ctx, l, w) in q {
                    let kind = if w {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let r = sub.l2s[ctx as usize].access(LineAddr::new(l), kind);
                    if !r.hit {
                        acc += sub.llc.access(LineAddr::new(l), AccessKind::Read).hit as u64;
                    }
                }
            }
        }
        println!(
            "shard-major floor:    {:>8.1} ms   ({:.2} M lines/s, llc_hits={acc})",
            t0.elapsed().as_secs_f64() * 1e3,
            stream.len() as f64 / t0.elapsed().as_secs_f64() / 1e6
        );
    }

    // 2b. synthetic floor: same shard-major access pattern over LLC-shaped
    // tag+lru arrays, no cache logic — measures pure data-structure cost.
    {
        const NSH: usize = 64;
        const SETS: usize = 256;
        const ASSOC: usize = 20;
        let mut tags: Vec<Vec<u64>> = (0..NSH).map(|_| vec![1u64; SETS * ASSOC]).collect();
        let mut lru: Vec<Vec<u64>> = (0..NSH).map(|_| vec![0u64; SETS * ASSOC]).collect();
        // Pre-split the stream into per-shard set sequences per chunk.
        let mut acc = 0u64;
        let t0 = Instant::now();
        let mut tick = 0u64;
        for chunk in stream.chunks(BATCH * 4) {
            let mut queues: Vec<Vec<u32>> = vec![Vec::new(); NSH];
            for &(_, l, _) in chunk {
                queues[(l & 63) as usize].push(((l >> 6) & (SETS as u64 - 1)) as u32);
            }
            for s in 0..NSH {
                let tg = &mut tags[s];
                let lr = &mut lru[s];
                for &set in &queues[s] {
                    let base = set as usize * ASSOC;
                    tick += 1;
                    // probe scan
                    let mut m = 0u32;
                    for w in 0..ASSOC {
                        m |= u32::from(tg[base + w] == 7) << w;
                    }
                    acc += m as u64;
                    // victim scan + stamp write
                    let mut vw = 0;
                    let mut vs = u64::MAX;
                    for w in 0..ASSOC {
                        if lr[base + w] < vs {
                            vs = lr[base + w];
                            vw = w;
                        }
                    }
                    lr[base + vw] = tick;
                    tg[base + vw] = tick;
                }
            }
        }
        println!(
            "synthetic floor:      {:>8.1} ms   ({:.2} M lines/s, acc={acc})",
            t0.elapsed().as_secs_f64() * 1e3,
            stream.len() as f64 / t0.elapsed().as_secs_f64() / 1e6
        );
    }

    // 3. monolithic hierarchy, same stream
    let mut h = Hierarchy::new(HierarchyConfig::e5_2650l(8));
    let mut wb = Vec::with_capacity(4);
    let t0 = Instant::now();
    let mut fills = 0u64;
    for &(ctx, l, kind) in &stream {
        let (_lv, fill) = h.access_into(ctx, LineAddr::new(l), kind, 0, &mut wb);
        fills += fill.is_some() as u64;
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "monolithic hierarchy: {:>8.1} ms   ({:.2} M lines/s, fills={fills})",
        secs * 1e3,
        stream.len() as f64 / secs / 1e6
    );

    // 4. full-run stage breakdown: one real experiment end to end, wall
    // time attributed to workload generation, mutator/heap, GC, and
    // report export, so the next Amdahl bottleneck is visible at run
    // (not kernel) granularity. GC vs mutator shares come from the span
    // recorder's host wall durations (never exported into artifacts —
    // this is exactly the ad-hoc host profiling they exist for).
    {
        use hemu::core::Experiment;
        use hemu::heap::CollectorKind;
        use hemu::workloads::WorkloadSpec;
        use hemu_obs::json::ToJson;
        use hemu_types::SubmitMode;

        let spec = WorkloadSpec::by_name("fop").expect("registry");

        // Workload generation alone: dataset + object-graph construction.
        let t0 = Instant::now();
        let _workload = spec.instantiate(42);
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Full run, both submission modes: the deferred-vs-scalar delta is
        // the submission layer's contribution.
        let t0 = Instant::now();
        let report = Experiment::new(spec)
            .collector(CollectorKind::KgN)
            .submit_mode(SubmitMode::Deferred)
            .run()
            .expect("deferred run");
        let deferred_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        Experiment::new(spec)
            .collector(CollectorKind::KgN)
            .submit_mode(SubmitMode::Scalar)
            .run()
            .expect("scalar run");
        let scalar_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Report export (serialization) cost, amortized over repeats.
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..100 {
            let mut s = String::new();
            report.write_json(&mut s);
            sink += s.len();
        }
        let export_ms = t0.elapsed().as_secs_f64() * 1e3 / 100.0;

        // Profiled run: span wall durations split the measured iteration
        // into GC and mutator/heap time. Profiling activates provenance,
        // which gates deferral off, so the split describes the scalar
        // path; shares still locate the bottleneck.
        let arts = Experiment::new(spec)
            .collector(CollectorKind::KgN)
            .profiling()
            .run_full()
            .expect("profiled run");
        let iter_ns: u64 = arts
            .spans
            .iter()
            .filter(|s| s.name == "iteration")
            .map(|s| s.wall_nanos)
            .sum();
        let gc_ns: u64 = arts
            .spans
            .iter()
            .filter(|s| matches!(s.name, "minor" | "minor_observer" | "full"))
            .map(|s| s.wall_nanos)
            .sum();
        let gc_share = gc_ns as f64 / iter_ns.max(1) as f64;

        println!("\nfull run ({} / KG-N):", spec.name);
        println!("  workload gen:       {gen_ms:>8.1} ms");
        println!("  run (deferred):     {deferred_ms:>8.1} ms");
        println!(
            "  run (scalar):       {scalar_ms:>8.1} ms   (submission layer saves {:.1}%)",
            100.0 * (1.0 - deferred_ms / scalar_ms.max(1e-9))
        );
        println!(
            "  gc share:           {:>8.1} %    (of measured iteration, profiled run; mutator/heap+cache = {:.1}%)",
            gc_share * 100.0,
            (1.0 - gc_share) * 100.0
        );
        println!("  report export:      {export_ms:>8.2} ms   ({sink} B over 100 reps)");
    }
}
