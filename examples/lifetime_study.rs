//! PCM lifetime estimation: how long would a 32 GB PCM main memory last
//! under a write-heavy benchmark (the Table III experiment for one
//! benchmark)?
//!
//! ```text
//! cargo run --example lifetime_study --release
//! ```

use hemu::core::lifetime::{LifetimeModel, ENDURANCE_PROTOTYPES};
use hemu::core::Experiment;
use hemu::heap::CollectorKind;
use hemu::types::HemuError;
use hemu::workloads::WorkloadSpec;

fn main() -> Result<(), HemuError> {
    let spec = WorkloadSpec::by_name("pr").expect("pr is registered");

    println!("Estimating PCM lifetime under PageRank (32 GB PCM, 50% wear levelling):\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "collector", "write rate", "10M writes/cell", "30M writes/cell", "50M writes/cell"
    );
    for collector in [
        CollectorKind::PcmOnly,
        CollectorKind::KgN,
        CollectorKind::KgW,
    ] {
        let report = Experiment::new(spec).collector(collector).run()?;
        let rate_bytes = report.pcm_write_rate_mbs * 1e6;
        let years: Vec<String> = ENDURANCE_PROTOTYPES
            .iter()
            .map(|&e| {
                let y = LifetimeModel::paper(e).years(rate_bytes);
                if y.is_finite() {
                    format!("{y:.0} yr")
                } else {
                    "unbounded".into()
                }
            })
            .collect();
        println!(
            "{:>10} {:>9.1} MB/s {:>14} {:>14} {:>14}",
            collector.name(),
            report.pcm_write_rate_mbs,
            years[0],
            years[1],
            years[2],
        );
    }
    println!(
        "\nEquation 1 of the paper: Y = S x E / (B x 2^25), halved for realistic\n\
         wear-levelling. Write-rationing collection multiplies PCM lifetime."
    );
    Ok(())
}
