//! Quickstart: measure PCM writes for one benchmark under three collector
//! configurations and print the reduction write-rationing achieves.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hemu::core::Experiment;
use hemu::heap::CollectorKind;
use hemu::types::HemuError;
use hemu::workloads::WorkloadSpec;

fn main() -> Result<(), HemuError> {
    let spec = WorkloadSpec::by_name("lusearch").expect("lusearch is registered");

    println!("Running lusearch on the emulated hybrid-memory platform...\n");
    let mut baseline = None;
    for collector in [
        CollectorKind::PcmOnly,
        CollectorKind::KgN,
        CollectorKind::KgW,
    ] {
        let report = Experiment::new(spec).collector(collector).run()?;
        let vs = baseline
            .as_ref()
            .map(|b| {
                format!(
                    " ({:.0}% fewer PCM writes)",
                    report.pcm_write_reduction_vs(b)
                )
            })
            .unwrap_or_default();
        println!(
            "{:>8}: {:>10} written to PCM at {:>6.1} MB/s{}",
            collector.name(),
            format!("{}", report.pcm_writes),
            report.pcm_write_rate_mbs,
            vs,
        );
        if collector == CollectorKind::PcmOnly {
            baseline = Some(report);
        }
    }

    println!(
        "\nKingsguard collectors keep frequently written objects in DRAM, so fewer\n\
         writes reach the emulated PCM socket — extending PCM lifetime."
    );
    Ok(())
}
