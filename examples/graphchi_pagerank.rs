//! Java vs C++ PageRank on a PCM-Only system (the Fig. 3 experiment for
//! one application), plus the GC's view of the Java run.
//!
//! ```text
//! cargo run --example graphchi_pagerank --release
//! ```

use hemu::core::Experiment;
use hemu::heap::CollectorKind;
use hemu::types::HemuError;
use hemu::workloads::{Language, WorkloadSpec};

fn main() -> Result<(), HemuError> {
    let pr = WorkloadSpec::by_name("pr").expect("pr is registered");

    println!("PageRank over a synthetic power-law graph (1 M edges, 4 M vertices)...\n");

    let cpp = Experiment::new(pr.with_language(Language::Cpp)).run()?;
    println!("C++ (malloc/free):        {}", cpp);

    let java = Experiment::new(pr)
        .collector(CollectorKind::PcmOnly)
        .run()?;
    println!("Java (GC, PCM-Only):      {}", java);

    let kgw = Experiment::new(pr).collector(CollectorKind::KgW).run()?;
    println!("Java (GC, KG-W hybrid):   {}", kgw);

    println!(
        "\nJava writes {:.1}x more to PCM than C++ on a PCM-Only system (allocation,\n\
         zero-initialisation and GC copying), but write-rationing collection drops the\n\
         Java PCM writes to {:.2}x of C++ — below manual memory management.",
        java.pcm_writes_normalized_to(&cpp),
        kgw.pcm_writes_normalized_to(&cpp),
    );

    if let Some(gc) = &java.gc {
        println!(
            "\nThe Java run's GC view: {} minor and {} full collections, {} allocated, \n\
             {} remembered-set entries recorded by the write barrier.",
            gc.minor_gcs,
            gc.full_gcs,
            gc.allocated(),
            gc.remset_entries,
        );
    }
    Ok(())
}
